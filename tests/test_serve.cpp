// Job server tests: spec parsing goldens, the job lifecycle API over the
// exact HTTP routing surface (no sockets needed), scheduler fairness,
// cancel -> resubmit -> bit-exact resume, and the headline determinism gate:
// a job run through the server under concurrent tenant load produces the
// same trace as the same spec run standalone, at worker caps 1 and 4.

#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/eval_store.hpp"
#include "obs/format.hpp"
#include "obs/http_server.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "serve/engine_factory.hpp"
#include "serve/job_spec.hpp"

using namespace nautilus;
using namespace nautilus::serve;

namespace {

// A per-test scratch directory, recreated empty so stale checkpoints or
// traces from a previous run can never leak into a determinism comparison.
std::string fresh_dir(const std::string& name)
{
    const std::string dir = ::testing::TempDir() + "nautilus_serve_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::vector<obs::TraceEvent> load_trace(const std::string& path)
{
    std::vector<obs::TraceEvent> events;
    std::ifstream in{path};
    EXPECT_TRUE(in.good()) << path;
    std::string line;
    while (std::getline(in, line)) {
        auto ev = obs::parse_jsonl_line(line);
        EXPECT_TRUE(ev.has_value()) << line;
        if (ev) events.push_back(std::move(*ev));
    }
    return events;
}

// The deterministic-family comparison, matching trace_diff's contract: every
// event and every field must agree exactly except wall-clock readings,
// scheduling artifacts (waits) and store traffic (a shared warm store changes
// where values come from, never what they are).
void expect_traces_equal(const std::string& base_path, const std::string& cand_path)
{
    // "attempts" counts evaluation-function invocations, which a store hit
    // elides -- like store_hits it describes where values came from, not
    // what they are (the repo's attempt-accounting identity is
    // attempts + store_hits == fresh + retries).  "job_id"/"request_id" are
    // the server's telemetry identity tags on run_start: pure labels, absent
    // from standalone traces by construction.
    static const std::set<std::string> skip{
        "seconds",        "busy_seconds", "eval_seconds", "path",
        "waits",          "inflight_waits", "store_hits", "store_misses",
        "attempts",       "job_id",       "request_id",
    };
    const auto filter = [](const obs::TraceEvent& ev) {
        std::vector<std::pair<std::string, obs::FieldValue>> kept;
        for (const auto& [key, value] : ev.fields)
            if (skip.count(key) == 0) kept.push_back({key, value});
        return kept;
    };
    // job_summary is the server-only accounting epilogue (wall-clock and
    // store-traffic dominated); the search content it must agree with is
    // already covered by run_end.
    const auto strip_summaries = [](std::vector<obs::TraceEvent> events) {
        std::vector<obs::TraceEvent> kept;
        for (auto& ev : events)
            if (ev.type != "job_summary") kept.push_back(std::move(ev));
        return kept;
    };
    const auto base = strip_summaries(load_trace(base_path));
    const auto cand = strip_summaries(load_trace(cand_path));
    ASSERT_EQ(base.size(), cand.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(base[i].type, cand[i].type) << "event " << i;
        EXPECT_EQ(filter(base[i]), filter(cand[i]))
            << "event " << i << " (" << base[i].type << ")";
    }
}

std::string expect_invalid(const std::string& json)
{
    try {
        (void)parse_job_spec(json);
    }
    catch (const std::invalid_argument& e) {
        return e.what();
    }
    ADD_FAILURE() << "spec accepted: " << json;
    return {};
}

// Minimal blocking HTTP client used by the concurrency stress: sends one
// raw request (caller includes any Content-Length) and returns the response.
std::string http_request(std::uint16_t port, const std::string& request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return {};
    }
    (void)!::send(fd, request.data(), request.size(), 0);
    std::string response;
    char buf[2048];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

std::string http_post_jobs(std::uint16_t port, const std::string& body)
{
    return http_request(port, "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                                  std::to_string(body.size()) + "\r\n\r\n" + body);
}

// ---------------------------------------------------------------- spec parse

TEST(JobSpec, ParsesAndCanonicalizesWithResolvedDefaults)
{
    const JobSpec spec = parse_job_spec(
        R"({"engine":"ga","generations":12,"seed":7,"workers":4,"guidance":"strong"})");
    EXPECT_EQ(spec.engine, "ga");
    EXPECT_EQ(spec.ip, "router");          // default
    EXPECT_EQ(spec.metric, "freq_mhz");    // per-IP default
    EXPECT_EQ(spec.direction, "max");      // per-metric default
    EXPECT_EQ(spec.workers, 4u);
    EXPECT_EQ(canonical_spec_json(spec),
              R"({"engine":"ga","ip":"router","metric":"freq_mhz","direction":"max",)"
              R"("guidance":"strong","generations":12,"seed":7,"workers":4})");
    // Canonicalization is what keys identity: a reordered spec with explicit
    // defaults is the same job (same fingerprint, same checkpoint file).
    const JobSpec same = parse_job_spec(
        R"({"workers":4,"seed":7,"ip":"router","guidance":"strong","engine":"ga",)"
        R"("generations":12})");
    EXPECT_EQ(spec_fingerprint(spec), spec_fingerprint(same));
    EXPECT_EQ(checkpoint_file("d", spec), checkpoint_file("d", same));
    EXPECT_NE(checkpoint_file("d", spec).find("d/spec-"), std::string::npos);

    const JobSpec other = parse_job_spec(R"({"engine":"ga","generations":12,"seed":8})");
    EXPECT_NE(spec_fingerprint(spec), spec_fingerprint(other));
}

TEST(JobSpec, MalformedSpecsGetActionableMessages)
{
    EXPECT_NE(expect_invalid(R"({"engine":"gaa","generations":5})")
                  .find("unknown engine 'gaa' (expected one of: ga, nsga2, random, sa, hc)"),
              std::string::npos);
    EXPECT_NE(expect_invalid(R"({"generations":5})").find("missing field 'engine'"),
              std::string::npos);
    EXPECT_NE(expect_invalid(R"({"engine":"ga"})").find("missing field 'generations'"),
              std::string::npos);
    EXPECT_NE(expect_invalid(R"({"engine":"sa"})").find("missing field 'evals'"),
              std::string::npos);
    EXPECT_NE(expect_invalid(R"({"engine":"ga","generations":5,"workers":-2})")
                  .find("field 'workers' must be a non-negative integer (got -2)"),
              std::string::npos);
    EXPECT_NE(expect_invalid(R"({"engine":"ga","generations":5,"workers":0})")
                  .find("field 'workers' must be a positive integer (got 0)"),
              std::string::npos);
    EXPECT_NE(expect_invalid(R"({"engine":"nsga2","generations":5})")
                  .find("missing field 'metric2'"),
              std::string::npos);
    EXPECT_NE(expect_invalid(R"({"engine":"ga","generations":5,"bogus":1})")
                  .find("unknown field 'bogus'"),
              std::string::npos);
    EXPECT_NE(expect_invalid(R"({"engine":"ga","generations":5,"guidance":"estimated"})")
                  .find("'estimated'"),
              std::string::npos);
    EXPECT_NE(expect_invalid(R"({"engine":"random","evals":30,"generations":5})")
                  .find("generations"),
              std::string::npos);
    EXPECT_NE(expect_invalid("not json at all").find("not valid JSON"),
              std::string::npos);
}

// ------------------------------------------------------------ job lifecycle

TEST(JobScheduler, SubmitRunsToDoneWithResult)
{
    SchedulerConfig cfg;
    cfg.worker_capacity = 2;
    cfg.jobs_dir = fresh_dir("lifecycle");
    JobScheduler scheduler{cfg};

    const SubmitResult r = scheduler.submit(
        R"({"engine":"ga","generations":4,"seed":3,"workers":2})");
    ASSERT_EQ(r.status, 201);
    ASSERT_EQ(r.id, 1u);
    ASSERT_TRUE(scheduler.wait(r.id, 60.0));
    EXPECT_EQ(scheduler.state(r.id), JobState::done);

    const std::string status = scheduler.status_json(r.id);
    EXPECT_NE(status.find("\"state\":\"done\""), std::string::npos);
    EXPECT_NE(status.find("\"result\":{\"feasible\":true"), std::string::npos);
    EXPECT_NE(status.find("\"best\":"), std::string::npos);
    EXPECT_NE(status.find("\"genome\":\""), std::string::npos);
    // The per-job trace landed next to the checkpoint directory.
    EXPECT_TRUE(std::ifstream{scheduler.trace_path_for(r.id)}.good());
    // A completed evolutionary job leaves no checkpoint behind.
    const JobSpec spec = parse_job_spec(
        R"({"engine":"ga","generations":4,"seed":3,"workers":2})");
    EXPECT_FALSE(std::ifstream{checkpoint_file(cfg.jobs_dir, spec)}.good());
}

TEST(JobScheduler, LifecycleOverHttpRoutingGoldens)
{
    SchedulerConfig cfg;
    cfg.worker_capacity = 2;
    cfg.jobs_dir = fresh_dir("http_goldens");
    auto scheduler = std::make_shared<JobScheduler>(cfg);
    obs::ObsHttpServer server{{}, nullptr, nullptr};
    server.attach_jobs(scheduler);  // no sockets: drive respond() directly

    // Malformed specs map to 400 with the parser's actionable message.
    obs::HttpResponse r = server.respond("POST", "/jobs", R"({"engine":"warp"})");
    EXPECT_EQ(r.status, 400);
    EXPECT_NE(r.body.find("unknown engine 'warp'"), std::string::npos);
    r = server.respond("POST", "/jobs", R"({"engine":"ga"})");
    EXPECT_EQ(r.status, 400);
    EXPECT_NE(r.body.find("missing field 'generations'"), std::string::npos);
    r = server.respond("POST", "/jobs", R"({"engine":"ga","generations":2,"workers":-1})");
    EXPECT_EQ(r.status, 400);
    EXPECT_NE(r.body.find("'workers'"), std::string::npos);

    // Submit -> 201 with the canonical spec echoed; lifecycle reaches done.
    r = server.respond("POST", "/jobs",
                       R"({"engine":"random","evals":25,"seed":4,"workers":1})");
    EXPECT_EQ(r.status, 201);
    EXPECT_EQ(r.content_type, "application/json");
    EXPECT_NE(r.body.find("\"id\":1"), std::string::npos);
    EXPECT_NE(r.body.find("\"spec\":{\"engine\":\"random\""), std::string::npos);
    ASSERT_TRUE(scheduler->wait(1, 60.0));
    r = server.respond("GET", "/jobs/1", {});
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("\"state\":\"done\""), std::string::npos);

    // List endpoint sees the job and the pool state.
    r = server.respond("GET", "/jobs", {});
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("\"capacity\":2"), std::string::npos);
    EXPECT_NE(r.body.find("\"id\":1"), std::string::npos);

    // Unknown ids and non-numeric ids are 404; wrong methods are 405 with
    // the RFC-required Allow header naming what the resource supports.
    EXPECT_EQ(server.respond("GET", "/jobs/99", {}).status, 404);
    EXPECT_EQ(server.respond("DELETE", "/jobs/99", {}).status, 404);
    EXPECT_EQ(server.respond("GET", "/jobs/abc", {}).status, 404);
    r = server.respond("PUT", "/jobs", "x");
    EXPECT_EQ(r.status, 405);
    EXPECT_EQ(r.allow, "GET, POST");
    r = server.respond("POST", "/jobs/1", "x");
    EXPECT_EQ(r.status, 405);
    EXPECT_EQ(r.allow, "GET, DELETE");

    // Cancelling a finished job is an idempotent no-op.
    r = server.respond("DELETE", "/jobs/1", {});
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("\"state\":\"done\""), std::string::npos);
}

TEST(JobScheduler, DuplicateActiveSpecIsRejected409)
{
    SchedulerConfig cfg;
    cfg.worker_capacity = 1;
    cfg.jobs_dir = fresh_dir("duplicate");
    JobScheduler scheduler{cfg};

    const std::string spec = R"({"engine":"ga","generations":300,"seed":5,"workers":1})";
    const SubmitResult first = scheduler.submit(spec);
    ASSERT_EQ(first.status, 201);
    const SubmitResult dup = scheduler.submit(spec);
    EXPECT_EQ(dup.status, 409);
    EXPECT_NE(dup.error.find("already active as job 1"), std::string::npos);

    ASSERT_TRUE(scheduler.cancel(first.id));
    ASSERT_TRUE(scheduler.wait(first.id, 60.0));
    // Terminal jobs no longer block resubmission of the same spec.
    const SubmitResult again = scheduler.submit(spec);
    EXPECT_EQ(again.status, 201);
    ASSERT_TRUE(scheduler.cancel(again.id));
    ASSERT_TRUE(scheduler.wait(again.id, 60.0));
}

// ------------------------------------------- cancel -> resubmit -> resume

// Deterministic resume: plant a checkpoint at a known generation through the
// exact machinery a server-side cancel uses (run_job halting at a boundary,
// writing to the scheduler's fingerprint-keyed checkpoint path), then submit
// the same spec.  The job must resume -- not restart -- and finish with the
// same best as an uninterrupted run.
TEST(JobScheduler, ResubmittedSpecResumesFromCancelCheckpointBitExactly)
{
    const std::string dir = fresh_dir("resume");
    const std::string spec_json =
        R"({"engine":"ga","generations":10,"seed":6,"workers":2})";
    const JobSpec spec = parse_job_spec(spec_json);

    // Reference: the uninterrupted run.
    JobRunInputs ref;
    const JobOutcome full = run_job(spec, ref);
    ASSERT_TRUE(full.feasible);

    // "Cancelled" run: halt with a checkpoint at generation 4, exactly what
    // DELETE /jobs/<id> produces when it lands mid-run.
    JobRunInputs halted;
    halted.checkpoint_path = checkpoint_file(dir, spec);
    halted.halt_at_generation = 4;
    const JobOutcome partial = run_job(spec, halted);
    EXPECT_TRUE(partial.halted);
    ASSERT_TRUE(std::ifstream{halted.checkpoint_path}.good());

    // Resubmit through the scheduler: it finds the checkpoint and resumes.
    SchedulerConfig cfg;
    cfg.worker_capacity = 4;
    cfg.jobs_dir = dir;
    JobScheduler scheduler{cfg};
    const SubmitResult r = scheduler.submit(spec_json);
    ASSERT_EQ(r.status, 201);
    ASSERT_TRUE(scheduler.wait(r.id, 60.0));
    EXPECT_EQ(scheduler.state(r.id), JobState::done);
    const std::string status = scheduler.status_json(r.id);
    EXPECT_NE(status.find("\"resumed\":true"), std::string::npos);

    // Bit-exact: the resumed job's final best equals the uninterrupted run's.
    std::string best = "\"best\":";
    obs::append_json_double(best, full.best);
    EXPECT_NE(status.find(best), std::string::npos) << status;
    // ... and the checkpoint was cleaned up on completion.
    EXPECT_FALSE(std::ifstream{checkpoint_file(dir, spec)}.good());
}

// Live cancel over the API: timing-agnostic (the job may finish before the
// cancel lands), but every observable path must stay consistent and a
// resumable job must finish with the reference best after resubmission.
TEST(JobScheduler, LiveCancelThenResubmitReachesReferenceResult)
{
    const std::string dir = fresh_dir("live_cancel");
    const std::string spec_json =
        R"({"engine":"ga","generations":250,"seed":9,"workers":2})";
    const JobSpec spec = parse_job_spec(spec_json);
    const JobOutcome full = run_job(spec, {});
    ASSERT_TRUE(full.feasible);

    SchedulerConfig cfg;
    cfg.worker_capacity = 2;
    cfg.jobs_dir = dir;
    JobScheduler scheduler{cfg};
    const SubmitResult r = scheduler.submit(spec_json);
    ASSERT_EQ(r.status, 201);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(scheduler.cancel(r.id));
    ASSERT_TRUE(scheduler.wait(r.id, 60.0));

    std::uint64_t final_id = r.id;
    if (scheduler.state(r.id) == JobState::cancelled) {
        const SubmitResult again = scheduler.submit(spec_json);
        ASSERT_EQ(again.status, 201);
        ASSERT_TRUE(scheduler.wait(again.id, 120.0));
        final_id = again.id;
    }
    ASSERT_EQ(scheduler.state(final_id), JobState::done);
    std::string best = "\"best\":";
    obs::append_json_double(best, full.best);
    EXPECT_NE(scheduler.status_json(final_id).find(best), std::string::npos);
}

// ------------------------------------------------------------------ fairness

// Strict FIFO admission: with capacity 3, a wide job (2 slots) behind a
// running wide job must not be leapfrogged by a later narrow job that would
// fit in the free slot -- and the narrow job still runs right after.  No
// starvation in either direction; admission order is submission order.
TEST(JobScheduler, FifoAdmissionPreventsStarvation)
{
    SchedulerConfig cfg;
    cfg.worker_capacity = 3;
    cfg.jobs_dir = fresh_dir("fairness");
    JobScheduler scheduler{cfg};

    const SubmitResult big = scheduler.submit(
        R"({"engine":"ga","generations":250,"seed":21,"workers":2})");
    ASSERT_EQ(big.status, 201);
    // Wait until the big job holds its 2 slots (leaving 1 free).
    for (int i = 0; i < 200 && scheduler.state(big.id) != JobState::running; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_EQ(scheduler.state(big.id), JobState::running);

    const SubmitResult wide = scheduler.submit(
        R"({"engine":"ga","generations":3,"seed":22,"workers":2})");
    const SubmitResult narrow = scheduler.submit(
        R"({"engine":"ga","generations":3,"seed":23,"workers":1})");
    ASSERT_EQ(wide.status, 201);
    ASSERT_EQ(narrow.status, 201);

    ASSERT_TRUE(scheduler.wait(big.id, 120.0));
    ASSERT_TRUE(scheduler.wait(wide.id, 120.0));
    ASSERT_TRUE(scheduler.wait(narrow.id, 120.0));
    EXPECT_EQ(scheduler.state(big.id), JobState::done);
    EXPECT_EQ(scheduler.state(wide.id), JobState::done);
    EXPECT_EQ(scheduler.state(narrow.id), JobState::done);

    const std::vector<std::uint64_t> expected{big.id, wide.id, narrow.id};
    EXPECT_EQ(scheduler.admission_order(), expected);
}

// ---------------------------------------------------------- determinism gate

// The headline guarantee: a spec run through the server under concurrent
// sibling load produces a trace in exact deterministic-family agreement with
// the same spec run standalone -- at worker caps 1 and 4, for both the GA
// and NSGA-II, with all server jobs sharing one EvalStore.
class ServerDeterminism : public ::testing::TestWithParam<std::tuple<const char*, int>> {
};

TEST_P(ServerDeterminism, ServerJobTraceMatchesStandaloneRun)
{
    const auto [engine, cap] = GetParam();
    const std::string name = std::string{engine} + "_w" + std::to_string(cap);
    const std::string dir = fresh_dir("determinism_" + name);

    const auto spec_for = [&](std::uint64_t seed) {
        std::string s = R"({"engine":")";
        s += engine;
        s += "\"";
        if (std::string{engine} == "nsga2") s += R"(,"metric2":"area_luts")";
        s += R"(,"generations":5,"seed":)" + std::to_string(seed);
        s += R"(,"workers":)" + std::to_string(cap) + "}";
        return s;
    };

    // Standalone reference: same spec, bare run_job, checkpointing enabled
    // (the scheduler always checkpoints evolutionary jobs, and checkpoint
    // trace events are part of the comparison).
    const JobSpec spec = parse_job_spec(spec_for(2015));
    JobRunInputs ref;
    ref.trace_path = dir + "/ref.trace.jsonl";
    ref.checkpoint_path = dir + "/ref.ckpt";
    const JobOutcome standalone = run_job(spec, ref);
    ASSERT_TRUE(standalone.feasible);
    std::remove(ref.checkpoint_path.c_str());

    // Server side: three concurrent sibling jobs (two decoy seeds) over a
    // shared store and a shared worker pool wide enough to overlap them.
    EvalStoreConfig store_cfg;
    store_cfg.path = dir + "/store";
    SchedulerConfig cfg;
    cfg.worker_capacity = static_cast<std::size_t>(cap) + 2;
    cfg.jobs_dir = dir;
    cfg.store = std::make_shared<EvalStore>(store_cfg);
    JobScheduler scheduler{cfg};

    const SubmitResult target = scheduler.submit(spec_for(2015));
    const SubmitResult decoy1 = scheduler.submit(spec_for(77));
    const SubmitResult decoy2 = scheduler.submit(spec_for(99));
    ASSERT_EQ(target.status, 201);
    ASSERT_EQ(decoy1.status, 201);
    ASSERT_EQ(decoy2.status, 201);
    for (const auto& job : {target, decoy1, decoy2}) {
        ASSERT_TRUE(scheduler.wait(job.id, 120.0));
        ASSERT_EQ(scheduler.state(job.id), JobState::done);
    }

    expect_traces_equal(ref.trace_path, scheduler.trace_path_for(target.id));
}

INSTANTIATE_TEST_SUITE_P(EnginesAndCaps, ServerDeterminism,
                         ::testing::Combine(::testing::Values("ga", "nsga2"),
                                            ::testing::Values(1, 4)),
                         [](const auto& info) {
                             return std::string{std::get<0>(info.param)} + "_w" +
                                    std::to_string(std::get<1>(info.param));
                         });

// ---------------------------------------------------------------- stress

// The TSan target (name matches the CI '*Concurren*' filter): 8 short jobs
// with mixed worker caps submitted over real sockets while a scraper thread
// hammers /metrics, /jobs and /jobs/<id>.  Everything must be data-race
// free and every job must reach a terminal state.
TEST(JobSchedulerConcurrency, MixedJobsUnderScrapeLoadAreSafe)
{
    const std::string dir = fresh_dir("stress");
    EvalStoreConfig store_cfg;
    store_cfg.path = dir + "/store";
    SchedulerConfig cfg;
    cfg.worker_capacity = 3;
    cfg.jobs_dir = dir;
    cfg.store = std::make_shared<EvalStore>(store_cfg);
    cfg.metrics = std::make_shared<obs::MetricsRegistry>();
    auto scheduler = std::make_shared<JobScheduler>(cfg);

    obs::ObsHttpServer server{{}, cfg.metrics, nullptr};
    server.attach_jobs(scheduler);
    server.start();

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> scrapes{0};
    std::thread scraper{[&] {
        std::uint64_t probe = 1;
        while (!done.load(std::memory_order_acquire)) {
            const std::string m =
                http_request(server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
            const std::string l =
                http_request(server.port(), "GET /jobs HTTP/1.1\r\nHost: x\r\n\r\n");
            const std::string j = http_request(
                server.port(), "GET /jobs/" + std::to_string(probe % 8 + 1) +
                                   " HTTP/1.1\r\nHost: x\r\n\r\n");
            if (!m.empty() && !l.empty() && !j.empty())
                scrapes.fetch_add(1, std::memory_order_relaxed);
            ++probe;
        }
    }};

    const std::vector<std::string> specs{
        R"({"engine":"ga","generations":4,"seed":1,"workers":1})",
        R"({"engine":"ga","generations":4,"seed":2,"workers":2})",
        R"({"engine":"random","evals":30,"seed":3,"workers":3})",
        R"({"engine":"sa","evals":30,"seed":4,"workers":1})",
        R"({"engine":"hc","evals":30,"seed":5,"workers":2})",
        R"({"engine":"nsga2","metric2":"area_luts","generations":3,"seed":6,"workers":2})",
        R"({"engine":"ga","generations":4,"seed":7,"workers":3})",
        R"({"engine":"random","evals":30,"seed":8,"workers":1})",
    };
    std::vector<std::thread> submitters;
    std::atomic<int> accepted{0};
    submitters.reserve(specs.size());
    for (const std::string& spec : specs)
        submitters.emplace_back([&, spec] {
            const std::string response = http_post_jobs(server.port(), spec);
            if (response.find("201") != std::string::npos)
                accepted.fetch_add(1, std::memory_order_relaxed);
        });
    for (std::thread& t : submitters) t.join();
    ASSERT_EQ(accepted.load(), static_cast<int>(specs.size()));

    for (std::uint64_t id = 1; id <= specs.size(); ++id) {
        ASSERT_TRUE(scheduler->wait(id, 120.0)) << "job " << id;
        EXPECT_EQ(scheduler->state(id), JobState::done) << "job " << id;
    }
    done.store(true, std::memory_order_release);
    scraper.join();
    server.stop();
    EXPECT_GT(scrapes.load(), 0u);

    // The scheduler metrics agree with what happened.
    const std::string exposition = server.body_for("/metrics");
    EXPECT_NE(exposition.find("nautilus_jobs_submitted_total 8"), std::string::npos);
    EXPECT_NE(exposition.find("nautilus_jobs_completed_total 8"), std::string::npos);
    EXPECT_NE(exposition.find("nautilus_jobs_running 0"), std::string::npos);
    EXPECT_NE(exposition.find("nautilus_jobs_capacity 3"), std::string::npos);
}

// ---------------------------------------------------------------- telemetry

// First decimal number following `key` in `text`, or 0 when absent.
std::uint64_t number_after(const std::string& text, const std::string& key)
{
    const auto pos = text.find(key);
    if (pos == std::string::npos) return 0;
    std::uint64_t n = 0;
    for (std::size_t i = pos + key.size(); i < text.size() && text[i] >= '0' &&
                                           text[i] <= '9';
         ++i)
        n = n * 10 + static_cast<std::uint64_t>(text[i] - '0');
    return n;
}

// The ISSUE's headline observability acceptance: the request id echoed by
// POST /jobs joins three planes -- the access log, the scheduler's "job"
// lifecycle records, and the job's own trace run_start -- with one grep.
TEST(JobServerTelemetry, RequestIdJoinsAccessLogServerLogAndTrace)
{
    const std::string dir = fresh_dir("telemetry_join");
    const std::string log_path = dir + "/server.log.jsonl";

    obs::LogConfig lc;
    lc.path = log_path;
    auto logger = std::make_shared<obs::Logger>(lc);

    SchedulerConfig cfg;
    cfg.worker_capacity = 2;
    cfg.jobs_dir = dir;
    cfg.metrics = std::make_shared<obs::MetricsRegistry>();
    cfg.log = logger;
    auto scheduler = std::make_shared<JobScheduler>(cfg);

    obs::ObsHttpServer server{{}, cfg.metrics, nullptr};
    server.attach_logger(logger);
    server.attach_jobs(scheduler);
    server.start();

    // Burn a couple of request ids first so the test cannot pass by matching
    // a default-constructed zero or an id that happens to equal the job id.
    (void)http_request(server.port(), "GET /status HTTP/1.1\r\nHost: x\r\n\r\n");
    (void)http_request(server.port(), "GET /jobs HTTP/1.1\r\nHost: x\r\n\r\n");

    const std::string response = http_post_jobs(
        server.port(), R"({"engine":"ga","generations":3,"seed":11,"workers":2})");
    ASSERT_NE(response.find("201"), std::string::npos) << response;
    const std::uint64_t rid = number_after(response, "X-Nautilus-Request-Id: ");
    const std::uint64_t job_id = number_after(response, "\"id\":");
    ASSERT_GT(rid, 0u);
    ASSERT_GT(job_id, 0u);
    ASSERT_NE(rid, job_id);  // ids come from different sequences here
    ASSERT_TRUE(scheduler->wait(job_id, 60.0));
    ASSERT_EQ(scheduler->state(job_id), JobState::done);

    // The status document carries the submitting request id and the
    // resource-accounting block.
    const std::string status = scheduler->status_json(job_id);
    EXPECT_NE(status.find("\"request_id\":" + std::to_string(rid)), std::string::npos)
        << status;
    EXPECT_NE(status.find("\"accounting\":{"), std::string::npos) << status;
    EXPECT_NE(status.find("\"queue_wait_seconds\":"), std::string::npos);
    EXPECT_NE(status.find("\"run_seconds\":"), std::string::npos);
    EXPECT_NE(status.find("\"fresh_evals\":"), std::string::npos);

    // /logs serves the same records the file sink got.
    const std::string tail =
        http_request(server.port(), "GET /logs?n=200 HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(tail.find("\"type\":\"access\""), std::string::npos) << tail;
    server.stop();

    // Join plane 1+2: every log line (access + job records) parses with the
    // exact JSONL parser the trace tooling uses, and the request id locates
    // both the access record of the POST and the job lifecycle records.
    std::ifstream log_in{log_path};
    ASSERT_TRUE(log_in.good());
    bool access_joined = false;
    bool job_joined = false;
    std::string line;
    while (std::getline(log_in, line)) {
        const auto ev = obs::parse_jsonl_line(line);
        ASSERT_TRUE(ev.has_value()) << line;
        if (ev->unsigned_int("request_id").value_or(0) != rid) continue;
        if (ev->type == "access") {
            EXPECT_EQ(ev->string("method").value_or(""), "POST");
            EXPECT_EQ(ev->string("path").value_or(""), "/jobs");
            EXPECT_EQ(ev->unsigned_int("status").value_or(0), 201u);
            access_joined = true;
        }
        if (ev->type == "job") {
            EXPECT_EQ(ev->unsigned_int("job_id").value_or(0), job_id);
            job_joined = true;
        }
    }
    EXPECT_TRUE(access_joined);
    EXPECT_TRUE(job_joined);

    // Join plane 3: the trace's run_start carries the same identity, and the
    // job_summary epilogue is present and tagged too.
    const auto trace = load_trace(scheduler->trace_path_for(job_id));
    bool run_start_joined = false;
    bool summary_joined = false;
    for (const auto& ev : trace) {
        if (ev.type == "run_start") {
            EXPECT_EQ(ev.unsigned_int("job_id").value_or(0), job_id);
            EXPECT_EQ(ev.unsigned_int("request_id").value_or(0), rid);
            run_start_joined = true;
        }
        if (ev.type == "job_summary") {
            EXPECT_EQ(ev.unsigned_int("request_id").value_or(0), rid);
            EXPECT_TRUE(ev.unsigned_int("distinct_evals").has_value());
            summary_joined = true;
        }
    }
    EXPECT_TRUE(run_start_joined);
    EXPECT_TRUE(summary_joined);
}

// TSan target (matches the CI '*Concurren*' filter): scrape /logs and
// /metrics continuously while a 4-worker GA job runs with logging on.  The
// seqlock ring and the metrics registry must be race-free under this load.
TEST(JobSchedulerConcurrency, LogsAndMetricsScrapeDuringGaJobIsSafe)
{
    const std::string dir = fresh_dir("telemetry_stress");
    auto logger = std::make_shared<obs::Logger>(obs::LogConfig{});  // ring only

    SchedulerConfig cfg;
    cfg.worker_capacity = 4;
    cfg.jobs_dir = dir;
    cfg.metrics = std::make_shared<obs::MetricsRegistry>();
    cfg.log = logger;
    auto scheduler = std::make_shared<JobScheduler>(cfg);

    obs::ObsHttpServer server{{}, cfg.metrics, nullptr};
    server.attach_logger(logger);
    server.attach_jobs(scheduler);
    server.start();

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> scrapes{0};
    std::thread scraper{[&] {
        while (!done.load(std::memory_order_acquire)) {
            const std::string logs = http_request(
                server.port(), "GET /logs?n=50 HTTP/1.1\r\nHost: x\r\n\r\n");
            const std::string metrics = http_request(
                server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
            if (!logs.empty() && !metrics.empty())
                scrapes.fetch_add(1, std::memory_order_relaxed);
        }
    }};

    const std::string response = http_post_jobs(
        server.port(), R"({"engine":"ga","generations":6,"seed":12,"workers":4})");
    ASSERT_NE(response.find("201"), std::string::npos) << response;
    const std::uint64_t job_id = number_after(response, "\"id\":");
    ASSERT_GT(job_id, 0u);
    ASSERT_TRUE(scheduler->wait(job_id, 120.0));
    EXPECT_EQ(scheduler->state(job_id), JobState::done);

    done.store(true, std::memory_order_release);
    scraper.join();
    server.stop();
    EXPECT_GT(scrapes.load(), 0u);
    EXPECT_GT(logger->records_logged(), 0u);

    // The HTTP self-metrics counted the scrape traffic.
    const std::string exposition = server.body_for("/metrics");
    EXPECT_NE(exposition.find("nautilus_http_requests_total"), std::string::npos);
    EXPECT_NE(exposition.find("nautilus_http_requests_2xx_total"), std::string::npos);
    EXPECT_NE(exposition.find("nautilus_http_request_seconds_count"), std::string::npos);
    EXPECT_NE(exposition.find("nautilus_http_response_bytes_total"), std::string::npos);
    EXPECT_NE(exposition.find("nautilus_job_queue_wait_seconds_count"), std::string::npos);
    EXPECT_NE(exposition.find("nautilus_job_run_seconds_count"), std::string::npos);
}

}  // namespace
