#include "core/operators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace nautilus {
namespace {

ParameterSpace op_space()
{
    ParameterSpace space;
    space.add("a", ParamDomain::int_range(0, 9));   // 10 values
    space.add("b", ParamDomain::pow2(0, 4));        // 5 values
    space.add("c", ParamDomain::boolean());         // 2 values
    space.add("d", ParamDomain::categorical({"x", "y", "z"}));  // unordered
    return space;
}

MutationContext make_ctx(const ParameterSpace& space, const HintSet& hints,
                         double rate = 0.1, std::size_t gen = 0)
{
    MutationContext ctx;
    ctx.space = &space;
    ctx.hints = &hints;
    ctx.mutation_rate = rate;
    ctx.generation = gen;
    return ctx;
}

double sum(const std::vector<double>& v)
{
    return std::accumulate(v.begin(), v.end(), 0.0);
}

// ---- gene_mutation_probabilities -------------------------------------------

TEST(GeneMutationProbabilities, BaselineIsFlat)
{
    const auto space = op_space();
    const HintSet hints = HintSet::none(space);
    const auto probs = gene_mutation_probabilities(make_ctx(space, hints, 0.1));
    ASSERT_EQ(probs.size(), 4u);
    for (double p : probs) EXPECT_DOUBLE_EQ(p, 0.1);
}

TEST(GeneMutationProbabilities, ZeroConfidenceIgnoresImportance)
{
    const auto space = op_space();
    HintSet hints = HintSet::none(space);
    hints.param(0).importance = 100.0;
    hints.set_confidence(0.0);
    const auto probs = gene_mutation_probabilities(make_ctx(space, hints));
    for (double p : probs) EXPECT_DOUBLE_EQ(p, 0.1);
}

TEST(GeneMutationProbabilities, ImportanceSkewsTowardImportantGenes)
{
    const auto space = op_space();
    HintSet hints = HintSet::none(space);
    hints.param(0).importance = 100.0;
    hints.set_confidence(0.8);
    const auto probs = gene_mutation_probabilities(make_ctx(space, hints));
    EXPECT_GT(probs[0], probs[1]);
    EXPECT_GT(probs[0], 0.1);
    EXPECT_LT(probs[1], 0.1);
}

TEST(GeneMutationProbabilities, FloorKeepsUnimportantGenesAlive)
{
    const auto space = op_space();
    HintSet hints = HintSet::none(space);
    hints.param(0).importance = 100.0;
    hints.set_confidence(1.0);
    const auto probs = gene_mutation_probabilities(make_ctx(space, hints));
    for (std::size_t i = 1; i < probs.size(); ++i) EXPECT_GT(probs[i], 0.0);
}

TEST(GeneMutationProbabilities, CapAt95Percent)
{
    const auto space = op_space();
    HintSet hints = HintSet::none(space);
    hints.param(0).importance = 100.0;
    hints.set_confidence(1.0);
    const auto probs = gene_mutation_probabilities(make_ctx(space, hints, 1.0));
    for (double p : probs) EXPECT_LE(p, 0.95);
}

TEST(GeneMutationProbabilities, DecayFlattensOverGenerations)
{
    const auto space = op_space();
    HintSet hints = HintSet::none(space);
    hints.param(0).importance = 100.0;
    hints.param(0).importance_decay = 0.9;
    hints.set_confidence(0.8);
    const auto early = gene_mutation_probabilities(make_ctx(space, hints, 0.1, 0));
    const auto late = gene_mutation_probabilities(make_ctx(space, hints, 0.1, 200));
    EXPECT_GT(early[0] - early[1], late[0] - late[1]);
    EXPECT_NEAR(late[0], 0.1, 1e-3);
    EXPECT_NEAR(late[1], 0.1, 1e-3);
}

TEST(GeneMutationProbabilities, MeanApproximatelyPreservedWithoutFloor)
{
    // Moderate skew (floor not binding): expected mutations per genome stay
    // at rate * n.
    const auto space = op_space();
    HintSet hints = HintSet::none(space);
    hints.param(0).importance = 3.0;
    hints.param(1).importance = 2.0;
    hints.set_confidence(0.7);
    const auto probs = gene_mutation_probabilities(make_ctx(space, hints, 0.1));
    EXPECT_NEAR(sum(probs), 0.4, 1e-9);
}

TEST(GeneMutationProbabilities, ValidatesContext)
{
    const auto space = op_space();
    const HintSet hints = HintSet::none(space);
    MutationContext ctx;  // null pointers
    EXPECT_THROW(gene_mutation_probabilities(ctx), std::invalid_argument);
    EXPECT_THROW(gene_mutation_probabilities(make_ctx(space, hints, 1.5)),
                 std::invalid_argument);
}

// ---- value_distribution -----------------------------------------------------

TEST(ValueDistribution, BaselineUniformExcludingCurrent)
{
    const auto d = ParamDomain::int_range(0, 4);
    const auto w = value_distribution(d, ParamHints{}, 0.0, 2);
    ASSERT_EQ(w.size(), 5u);
    EXPECT_DOUBLE_EQ(w[2], 0.0);
    for (std::size_t i = 0; i < 5; ++i)
        if (i != 2) { EXPECT_DOUBLE_EQ(w[i], 0.25); }
}

TEST(ValueDistribution, SingleValueDomainIsAllZero)
{
    const auto d = ParamDomain::int_range(3, 3);
    const auto w = value_distribution(d, ParamHints{}, 0.5, 0);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_DOUBLE_EQ(w[0], 0.0);
}

TEST(ValueDistribution, SumsToOne)
{
    const auto d = ParamDomain::int_range(0, 9);
    ParamHints h;
    h.bias = 0.7;
    for (double conf : {0.0, 0.3, 0.8, 1.0}) {
        const auto w = value_distribution(d, h, conf, 4);
        EXPECT_NEAR(sum(w), 1.0, 1e-9) << "conf=" << conf;
    }
}

TEST(ValueDistribution, PositiveBiasPrefersHigherValues)
{
    const auto d = ParamDomain::int_range(0, 9);
    ParamHints h;
    h.bias = 0.8;
    const auto w = value_distribution(d, h, 0.9, 4);
    double up = 0.0;
    double down = 0.0;
    for (std::size_t i = 0; i < 10; ++i) (i > 4 ? up : down) += w[i];
    EXPECT_GT(up, down * 2.0);
}

TEST(ValueDistribution, NegativeBiasPrefersLowerValues)
{
    const auto d = ParamDomain::int_range(0, 9);
    ParamHints h;
    h.bias = -0.8;
    const auto w = value_distribution(d, h, 0.9, 4);
    double up = 0.0;
    double down = 0.0;
    for (std::size_t i = 0; i < 10; ++i) (i > 4 ? up : down) += w[i];
    EXPECT_GT(down, up * 2.0);
}

TEST(ValueDistribution, BiasAtDomainEdgeStillSumsToOne)
{
    const auto d = ParamDomain::int_range(0, 9);
    ParamHints h;
    h.bias = 0.9;  // pushes up, but current is already at the top
    const auto w = value_distribution(d, h, 0.9, 9);
    EXPECT_NEAR(sum(w), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(w[9], 0.0);
}

TEST(ValueDistribution, TargetConcentratesNearTarget)
{
    const auto d = ParamDomain::int_range(0, 9);
    ParamHints h;
    h.target = 7.0;
    const auto w = value_distribution(d, h, 0.9, 0);
    // 7 should be the most likely destination.
    for (std::size_t i = 0; i < 10; ++i)
        if (i != 7 && i != 0) { EXPECT_GE(w[7], w[i]); }
}

TEST(ValueDistribution, ZeroConfidenceEqualsBaselineEvenWithHints)
{
    const auto d = ParamDomain::int_range(0, 9);
    ParamHints h;
    h.bias = 0.9;
    const auto guided = value_distribution(d, h, 0.0, 3);
    const auto baseline = value_distribution(d, ParamHints{}, 0.0, 3);
    for (std::size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(guided[i], baseline[i]);
}

TEST(ValueDistribution, UnorderedDomainIgnoresBias)
{
    const auto d = ParamDomain::categorical({"x", "y", "z"});
    ParamHints h;
    h.bias = 0.9;  // would be rejected by validate; distribution ignores it
    const auto w = value_distribution(d, h, 0.9, 0);
    EXPECT_DOUBLE_EQ(w[1], w[2]);
}

TEST(ValueDistribution, ConfidenceInterpolatesUniformAndDirected)
{
    const auto d = ParamDomain::int_range(0, 9);
    ParamHints h;
    h.bias = 1.0;
    const auto w_lo = value_distribution(d, h, 0.2, 4);
    const auto w_hi = value_distribution(d, h, 0.9, 4);
    // Down-moves shrink as confidence grows.
    EXPECT_GT(w_lo[0], w_hi[0]);
    EXPECT_LT(w_lo[9], w_hi[9] + 0.5);  // sanity: both valid distributions
    // Every value keeps nonzero probability below confidence 1 (footnote 1).
    for (std::size_t i = 0; i < 10; ++i)
        if (i != 4) { EXPECT_GT(w_hi[i], 0.0); }
}

TEST(ValueDistribution, CurrentOutOfRangeThrows)
{
    const auto d = ParamDomain::int_range(0, 4);
    EXPECT_THROW(value_distribution(d, ParamHints{}, 0.0, 5), std::invalid_argument);
}

TEST(ValueDistribution, StepScaleControlsReach)
{
    const auto d = ParamDomain::int_range(0, 19);
    ParamHints near;
    near.bias = 0.9;
    near.step_scale = 0.05;
    ParamHints far = near;
    far.step_scale = 1.0;
    const auto w_near = value_distribution(d, near, 1.0, 0);
    const auto w_far = value_distribution(d, far, 1.0, 0);
    // Small steps: next value dominates; large steps spread mass out.
    EXPECT_GT(w_near[1], w_far[1]);
    EXPECT_LT(w_near[19], w_far[19]);
}

// ---- mutate -----------------------------------------------------------------

TEST(Mutate, RateZeroChangesNothing)
{
    const auto space = op_space();
    const HintSet hints = HintSet::none(space);
    Rng rng{1};
    Genome g = Genome::random(space, rng);
    const Genome before = g;
    EXPECT_EQ(mutate(g, make_ctx(space, hints, 0.0), rng), 0u);
    EXPECT_EQ(g, before);
}

TEST(Mutate, RateOneChangesEveryMultiValueGene)
{
    const auto space = op_space();
    const HintSet hints = HintSet::none(space);
    Rng rng{2};
    Genome g = Genome::random(space, rng);
    const Genome before = g;
    const std::size_t changed = mutate(g, make_ctx(space, hints, 1.0), rng);
    EXPECT_EQ(changed, 4u);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_NE(g.gene(i), before.gene(i));
}

TEST(Mutate, StaysWithinDomains)
{
    const auto space = op_space();
    const HintSet hints = HintSet::none(space);
    Rng rng{3};
    for (int trial = 0; trial < 200; ++trial) {
        Genome g = Genome::random(space, rng);
        mutate(g, make_ctx(space, hints, 0.5), rng);
        ASSERT_TRUE(g.compatible_with(space));
    }
}

TEST(Mutate, ObservedRateMatchesConfigured)
{
    const auto space = op_space();
    const HintSet hints = HintSet::none(space);
    Rng rng{4};
    std::size_t changed = 0;
    constexpr int trials = 5000;
    for (int t = 0; t < trials; ++t) {
        Genome g = Genome::random(space, rng);
        changed += mutate(g, make_ctx(space, hints, 0.1), rng);
    }
    // 4 genes x 0.1 = 0.4 expected changes per genome.
    EXPECT_NEAR(changed / static_cast<double>(trials), 0.4, 0.03);
}

TEST(Mutate, RejectsIncompatibleGenome)
{
    const auto space = op_space();
    const HintSet hints = HintSet::none(space);
    Rng rng{5};
    Genome g{{0, 0}};
    EXPECT_THROW(mutate(g, make_ctx(space, hints), rng), std::invalid_argument);
}

// ---- crossover --------------------------------------------------------------

TEST(Crossover, ChildrenGenesComeFromParentsColumnwise)
{
    Rng rng{6};
    const Genome a{{0, 0, 0, 0, 0, 0}};
    const Genome b{{1, 1, 1, 1, 1, 1}};
    for (auto kind : {CrossoverKind::single_point, CrossoverKind::two_point,
                      CrossoverKind::uniform}) {
        for (int t = 0; t < 50; ++t) {
            const auto [ca, cb] = crossover(a, b, kind, rng);
            for (std::size_t i = 0; i < a.size(); ++i) {
                // Each column keeps exactly one 0 and one 1.
                EXPECT_EQ(ca.gene(i) + cb.gene(i), 1u) << crossover_name(kind);
            }
        }
    }
}

TEST(Crossover, SinglePointProducesContiguousSwap)
{
    Rng rng{7};
    const Genome a{{0, 0, 0, 0, 0, 0}};
    const Genome b{{1, 1, 1, 1, 1, 1}};
    for (int t = 0; t < 50; ++t) {
        const auto [ca, cb] = crossover(a, b, CrossoverKind::single_point, rng);
        // ca must be 0...0 1...1 with exactly one transition.
        int transitions = 0;
        for (std::size_t i = 1; i < ca.size(); ++i)
            if (ca.gene(i) != ca.gene(i - 1)) ++transitions;
        EXPECT_EQ(transitions, 1);
        EXPECT_EQ(ca.gene(0), 0u);  // cut point >= 1 keeps the head
    }
}

TEST(Crossover, SingleGeneParentsAreNoOp)
{
    Rng rng{8};
    const Genome a{{3}};
    const Genome b{{7}};
    const auto [ca, cb] = crossover(a, b, CrossoverKind::single_point, rng);
    EXPECT_EQ(ca, a);
    EXPECT_EQ(cb, b);
}

TEST(Crossover, RejectsMismatchedParents)
{
    Rng rng{9};
    const Genome a{{1, 2}};
    const Genome b{{1, 2, 3}};
    EXPECT_THROW(crossover(a, b, CrossoverKind::uniform, rng), std::invalid_argument);
    const Genome empty;
    EXPECT_THROW(crossover(empty, empty, CrossoverKind::uniform, rng),
                 std::invalid_argument);
}

TEST(Crossover, UniformMixesBothParents)
{
    Rng rng{10};
    const Genome a{{0, 0, 0, 0, 0, 0, 0, 0}};
    const Genome b{{1, 1, 1, 1, 1, 1, 1, 1}};
    int mixed = 0;
    for (int t = 0; t < 100; ++t) {
        const auto [ca, cb] = crossover(a, b, CrossoverKind::uniform, rng);
        bool has0 = false;
        bool has1 = false;
        for (std::size_t i = 0; i < ca.size(); ++i) {
            has0 |= ca.gene(i) == 0;
            has1 |= ca.gene(i) == 1;
        }
        if (has0 && has1) ++mixed;
    }
    EXPECT_GT(mixed, 90);
}

TEST(Crossover, EveryGeneIndexExchangedWithNonzeroFrequency)
{
    // Regression for the two-point bug: the second cut used to be capped at
    // n-1, and since swap_range is half-open the last gene could never be
    // exchanged.  With the fix every classic cut pair is reachable, so every
    // swappable index must be hit with roughly its expected frequency.
    Rng rng{11};
    constexpr std::size_t n = 6;
    constexpr int trials = 4000;
    const Genome a{{0, 0, 0, 0, 0, 0}};
    const Genome b{{1, 1, 1, 1, 1, 1}};
    for (auto kind : {CrossoverKind::single_point, CrossoverKind::two_point,
                      CrossoverKind::uniform}) {
        std::vector<int> swapped(n, 0);
        for (int t = 0; t < trials; ++t) {
            const auto [ca, cb] = crossover(a, b, kind, rng);
            for (std::size_t i = 0; i < n; ++i)
                if (ca.gene(i) != a.gene(i)) ++swapped[i];
        }
        // The point crossovers keep index 0 with its parent by construction
        // (cuts start at 1); uniform can exchange any index.
        const std::size_t first = kind == CrossoverKind::uniform ? 0 : 1;
        for (std::size_t i = first; i < n; ++i)
            EXPECT_GT(swapped[i], trials / 50)
                << crossover_name(kind) << " never/rarely exchanges gene " << i;
    }
}

TEST(Crossover, TwoPointLastGeneMatchesExpectedRate)
{
    // With p uniform on [1, n-1] and q uniform on [1, n], the last gene
    // swaps iff max(p, q) == n, i.e. q == n: probability 1/n.
    Rng rng{12};
    constexpr std::size_t n = 5;
    constexpr int trials = 20000;
    const Genome a{{0, 0, 0, 0, 0}};
    const Genome b{{1, 1, 1, 1, 1}};
    int last_swapped = 0;
    for (int t = 0; t < trials; ++t) {
        const auto [ca, cb] = crossover(a, b, CrossoverKind::two_point, rng);
        if (ca.gene(n - 1) != 0) ++last_swapped;
    }
    const double rate = last_swapped / static_cast<double>(trials);
    EXPECT_NEAR(rate, 1.0 / n, 0.02);
}

TEST(Crossover, NamesAreStable)
{
    EXPECT_STREQ(crossover_name(CrossoverKind::single_point), "single_point");
    EXPECT_STREQ(crossover_name(CrossoverKind::two_point), "two_point");
    EXPECT_STREQ(crossover_name(CrossoverKind::uniform), "uniform");
}

// ---- property sweep: the guided distribution is a valid distribution --------

class ValueDistributionSweep
    : public ::testing::TestWithParam<std::tuple<double, double, std::uint32_t>> {};

TEST_P(ValueDistributionSweep, ValidProbabilityDistribution)
{
    const auto [bias, confidence, current] = GetParam();
    const auto d = ParamDomain::int_range(0, 7);
    ParamHints h;
    h.bias = bias;
    const auto w = value_distribution(d, h, confidence, current);
    EXPECT_NEAR(sum(w), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(w[current], 0.0);
    for (double p : w) EXPECT_GE(p, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    BiasConfidenceCurrent, ValueDistributionSweep,
    ::testing::Combine(::testing::Values(-1.0, -0.5, 0.0, 0.5, 1.0),
                       ::testing::Values(0.1, 0.5, 0.9, 1.0),
                       ::testing::Values(0u, 3u, 7u)));

// --------------------------------------------------------------------------
// repair(): cardinality arithmetic must happen in std::size_t.  (Empty
// domains are not constructible through the public ParamDomain factories --
// every one validates -- so the cardinality == 0 rejection inside repair()
// is purely defensive and has no reachable test vector.)

TEST(Repair, ClampsOutOfDomainGenesToLastValue)
{
    ParameterSpace space;
    space.add("a", ParamDomain::int_range(0, 7));
    space.add("b", ParamDomain::boolean());
    Genome g{std::vector<std::uint32_t>{12, 9}};
    EXPECT_EQ(repair(g, space), 2u);
    EXPECT_EQ(g.genes(), (std::vector<std::uint32_t>{7, 1}));
    EXPECT_TRUE(g.compatible_with(space));
}

TEST(Repair, HugeCardinalityDomainLeavesValidGenesUntouched)
{
    // cardinality == 2^32: the old uint32 cast truncated it to 0, so every
    // gene compared >= "cardinality" and was clamped to 0u - 1 == UINT32_MAX,
    // corrupting perfectly valid genomes.
    ParameterSpace space;
    space.add("wide", ParamDomain::int_range(0, 4294967295LL));
    Genome g{std::vector<std::uint32_t>{123}};
    EXPECT_EQ(repair(g, space), 0u);
    EXPECT_EQ(g.genes()[0], 123u);
    EXPECT_TRUE(g.compatible_with(space));
}

}  // namespace
}  // namespace nautilus
