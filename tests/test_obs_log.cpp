// Structured service log tests: level gating, the seqlock ring behind
// /logs (ordering, wrap, torn-read safety under concurrent writers), the
// file sink, and the golden guarantee that access-log records round-trip
// through the exact JSONL parser the trace tooling uses.

#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

using namespace nautilus::obs;

namespace {

std::string fresh_dir(const std::string& name)
{
    const std::string dir = ::testing::TempDir() + "nautilus_log_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

TEST(ObsLog, LevelNamesRoundTrip)
{
    for (const LogLevel level :
         {LogLevel::debug, LogLevel::info, LogLevel::warn, LogLevel::error})
        EXPECT_EQ(log_level_from_name(log_level_name(level)), level);
    EXPECT_FALSE(log_level_from_name("verbose").has_value());
    EXPECT_FALSE(log_level_from_name("INFO").has_value());
    EXPECT_FALSE(log_level_from_name("").has_value());
}

TEST(ObsLog, LevelFilteringDiscardsBelowThreshold)
{
    LogConfig cfg;
    cfg.level = LogLevel::warn;
    Logger logger{cfg};
    EXPECT_FALSE(logger.enabled(LogLevel::debug));
    EXPECT_FALSE(logger.enabled(LogLevel::info));
    EXPECT_TRUE(logger.enabled(LogLevel::warn));
    EXPECT_TRUE(logger.enabled(LogLevel::error));

    logger.log(LogLevel::debug, TraceEvent{"noise"});
    logger.log(LogLevel::info, TraceEvent{"noise"});
    EXPECT_EQ(logger.records_logged(), 0u);
    logger.log(LogLevel::warn, TraceEvent{"signal"});
    logger.log(LogLevel::error, TraceEvent{"signal"});
    EXPECT_EQ(logger.records_logged(), 2u);
    EXPECT_EQ(logger.records_dropped(), 0u);
}

TEST(ObsLog, TailServesMostRecentRecordsInEmissionOrderAcrossWrap)
{
    LogConfig cfg;
    cfg.ring_capacity = 8;  // force several wraps
    Logger logger{cfg};
    for (std::uint64_t i = 0; i < 30; ++i) {
        TraceEvent ev{"tick"};
        ev.add("n", FieldValue{i});
        logger.log(LogLevel::info, std::move(ev));
    }

    const std::string tail = logger.tail_json(5);
    EXPECT_NE(tail.find("\"logged\":30"), std::string::npos) << tail;
    EXPECT_NE(tail.find("\"dropped\":0"), std::string::npos);
    // Exactly the last five survive, in emission order.
    EXPECT_EQ(tail.find("\"n\":24"), std::string::npos);
    std::size_t prev = 0;
    for (std::uint64_t i = 25; i < 30; ++i) {
        const auto pos = tail.find("\"n\":" + std::to_string(i));
        ASSERT_NE(pos, std::string::npos) << tail;
        EXPECT_GT(pos, prev);
        prev = pos;
    }
}

TEST(ObsLog, TailLargerThanHistoryReturnsEverything)
{
    Logger logger{LogConfig{}};
    logger.log(LogLevel::info, TraceEvent{"only"});
    const std::string tail = logger.tail_json(100);
    EXPECT_NE(tail.find("\"type\":\"only\""), std::string::npos);
    EXPECT_NE(tail.find("\"logged\":1"), std::string::npos);
}

// The golden round-trip: a record with the exact shape the HTTP server's
// access log emits parses back through parse_jsonl_line -- the same parser
// trace_inspect and trace_diff are built on -- with every field intact and
// "level" as the first field.
TEST(ObsLog, AccessRecordRoundTripsThroughTraceParser)
{
    const std::string dir = fresh_dir("roundtrip");
    LogConfig cfg;
    cfg.path = dir + "/server.log.jsonl";
    Logger logger{cfg};

    TraceEvent access{"access"};
    access.add("request_id", FieldValue{std::uint64_t{42}});
    access.add("method", FieldValue{std::string{"POST"}});
    access.add("path", FieldValue{std::string{"/jobs"}});
    access.add("status", 201);
    access.add("bytes", std::size_t{137});
    access.add("micros", FieldValue{std::uint64_t{8421}});
    logger.log(LogLevel::info, std::move(access));

    std::ifstream in{cfg.path};
    ASSERT_TRUE(in.good());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const auto ev = parse_jsonl_line(line);
    ASSERT_TRUE(ev.has_value()) << line;
    EXPECT_EQ(ev->type, "access");
    ASSERT_FALSE(ev->fields.empty());
    EXPECT_EQ(ev->fields.front().first, "level");
    EXPECT_EQ(ev->string("level").value_or(""), "info");
    EXPECT_EQ(ev->unsigned_int("request_id").value_or(0), 42u);
    EXPECT_EQ(ev->string("method").value_or(""), "POST");
    EXPECT_EQ(ev->string("path").value_or(""), "/jobs");
    EXPECT_EQ(ev->unsigned_int("status").value_or(0), 201u);
    EXPECT_EQ(ev->unsigned_int("bytes").value_or(0), 137u);
    EXPECT_EQ(ev->unsigned_int("micros").value_or(0), 8421u);
    // The serialized line and the ring's copy are byte-identical.
    EXPECT_NE(logger.tail_json(1).find(line), std::string::npos);
}

TEST(ObsLog, OversizedRecordsDropFromRingButReachFile)
{
    const std::string dir = fresh_dir("oversized");
    LogConfig cfg;
    cfg.path = dir + "/server.log.jsonl";
    Logger logger{cfg};

    TraceEvent big{"blob"};
    big.add("payload", FieldValue{std::string(2000, 'x')});
    logger.log(LogLevel::info, std::move(big));
    logger.log(LogLevel::info, TraceEvent{"small"});

    EXPECT_EQ(logger.records_logged(), 2u);
    EXPECT_EQ(logger.records_dropped(), 1u);
    const std::string tail = logger.tail_json(10);
    EXPECT_EQ(tail.find("\"type\":\"blob\""), std::string::npos);
    EXPECT_NE(tail.find("\"type\":\"small\""), std::string::npos);
    EXPECT_NE(tail.find("\"dropped\":1"), std::string::npos);

    // The file sink is not bounded by the slot size.
    std::ifstream in{cfg.path};
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_NE(line.find("\"type\":\"blob\""), std::string::npos);
    EXPECT_TRUE(parse_jsonl_line(line).has_value());
}

TEST(ObsLog, UnopenablePathThrows)
{
    LogConfig cfg;
    cfg.path = fresh_dir("unopenable") + "/no/such/dir/log.jsonl";
    EXPECT_THROW(Logger{cfg}, std::runtime_error);
}

// TSan target (matches the CI '*Concurren*' filter): four writer threads
// racing one tail scraper over a small ring.  Correctness bar: no torn
// records ever surface (every tail entry is a parseable JSON object) and
// the final count equals what the writers emitted.
TEST(ObsLogConcurrency, ManyWritersOneScraperNeverSurfaceTornRecords)
{
    LogConfig cfg;
    cfg.ring_capacity = 16;  // small ring maximizes slot reuse contention
    Logger logger{cfg};

    constexpr int kWriters = 4;
    constexpr std::uint64_t kPerWriter = 400;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> torn{0};
    std::thread scraper{[&] {
        while (!stop.load(std::memory_order_acquire)) {
            const std::string tail = logger.tail_json(16);
            // Every surfaced record must have survived seqlock validation:
            // count object opens inside "records":[...] against closes
            // (one extra close belongs to the wrapper object itself); any
            // other imbalance means a torn copy leaked through.
            const auto records = tail.find("\"records\":[");
            std::uint64_t opens = 0;
            std::uint64_t closes = 0;
            for (std::size_t i = records; i < tail.size(); ++i) {
                if (tail[i] == '{') ++opens;
                if (tail[i] == '}') ++closes;
            }
            if (opens + 1 != closes) torn.fetch_add(1, std::memory_order_relaxed);
        }
    }};

    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&, w] {
            for (std::uint64_t i = 0; i < kPerWriter; ++i) {
                TraceEvent ev{"tick"};
                ev.add("writer", w);
                ev.add("n", FieldValue{i});
                logger.log(LogLevel::info, std::move(ev));
            }
        });
    for (std::thread& t : writers) t.join();
    stop.store(true, std::memory_order_release);
    scraper.join();

    EXPECT_EQ(torn.load(), 0u);
    EXPECT_EQ(logger.records_logged(), kWriters * kPerWriter);
    EXPECT_EQ(logger.records_dropped(), 0u);
    // A final quiescent tail returns 16 valid records.
    const std::string tail = logger.tail_json(16);
    EXPECT_NE(tail.find("\"type\":\"tick\""), std::string::npos);
}

}  // namespace
