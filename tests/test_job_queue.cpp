#include "synth/job_queue.hpp"

#include <gtest/gtest.h>

namespace nautilus::synth {
namespace {

TEST(SynthesisMinutes, GrowsWithDesignSize)
{
    const double small = synthesis_minutes(500.0, 1);
    const double big = synthesis_minutes(25000.0, 1);
    EXPECT_GT(big, small);
    // "Minutes to hours": small designs minutes-scale, large designs
    // hour-plus.
    EXPECT_GT(small, 1.0);
    EXPECT_LT(small, 30.0);
    EXPECT_GT(big, 60.0);
}

TEST(SynthesisMinutes, DeterministicPerKey)
{
    EXPECT_DOUBLE_EQ(synthesis_minutes(1000.0, 42), synthesis_minutes(1000.0, 42));
    EXPECT_NE(synthesis_minutes(1000.0, 42), synthesis_minutes(1000.0, 43));
}

TEST(SynthesisMinutes, RejectsNegativeArea)
{
    EXPECT_THROW(synthesis_minutes(-1.0, 0), std::invalid_argument);
}

TEST(SynthesisCluster, SingleWorkerSerializes)
{
    SynthesisCluster cluster{1};
    const std::vector<double> jobs{10.0, 20.0, 30.0};
    EXPECT_DOUBLE_EQ(cluster.run_batch(jobs), 60.0);
    EXPECT_DOUBLE_EQ(cluster.elapsed_minutes(), 60.0);
    EXPECT_DOUBLE_EQ(cluster.busy_minutes(), 60.0);
    EXPECT_DOUBLE_EQ(cluster.utilization(), 1.0);
}

TEST(SynthesisCluster, ManyWorkersParallelize)
{
    SynthesisCluster cluster{3};
    const std::vector<double> jobs{10.0, 20.0, 30.0};
    EXPECT_DOUBLE_EQ(cluster.run_batch(jobs), 30.0);  // each job on its own worker
    EXPECT_DOUBLE_EQ(cluster.utilization(), 60.0 / 90.0);
}

TEST(SynthesisCluster, LptBalancesLoad)
{
    SynthesisCluster cluster{2};
    // LPT: 30 -> w0, 20 -> w1, 10 -> w1: loads {30, 30}.
    const std::vector<double> jobs{10.0, 20.0, 30.0};
    EXPECT_DOUBLE_EQ(cluster.run_batch(jobs), 30.0);
}

TEST(SynthesisCluster, MoreWorkersNeverSlower)
{
    const std::vector<double> jobs{7, 3, 9, 4, 6, 2, 8, 5, 1, 10};
    double prev = 1e18;
    for (std::size_t w : {1u, 2u, 4u, 8u, 16u}) {
        SynthesisCluster cluster{w};
        const double makespan = cluster.run_batch(jobs);
        EXPECT_LE(makespan, prev);
        prev = makespan;
    }
}

TEST(SynthesisCluster, ParallelismCappedByBatchSize)
{
    // The paper's point: population size caps evaluation parallelism.  A
    // 10-job batch gains nothing beyond 10 workers.
    const std::vector<double> jobs(10, 5.0);
    SynthesisCluster ten{10};
    SynthesisCluster hundred{100};
    EXPECT_DOUBLE_EQ(ten.run_batch(jobs), hundred.run_batch(jobs));
}

TEST(SynthesisCluster, EmptyBatchIsFree)
{
    SynthesisCluster cluster{4};
    EXPECT_DOUBLE_EQ(cluster.run_batch({}), 0.0);
    EXPECT_DOUBLE_EQ(cluster.elapsed_minutes(), 0.0);
    EXPECT_DOUBLE_EQ(cluster.utilization(), 0.0);
}

TEST(SynthesisCluster, Validation)
{
    EXPECT_THROW(SynthesisCluster{0}, std::invalid_argument);
    SynthesisCluster cluster{2};
    const std::vector<double> bad{1.0, -2.0};
    EXPECT_THROW(cluster.run_batch(bad), std::invalid_argument);
}

TEST(SynthesisCluster, ResetClearsClock)
{
    SynthesisCluster cluster{2};
    const std::vector<double> jobs{5.0, 5.0};
    cluster.run_batch(jobs);
    cluster.reset();
    EXPECT_DOUBLE_EQ(cluster.elapsed_minutes(), 0.0);
    EXPECT_DOUBLE_EQ(cluster.busy_minutes(), 0.0);
}

TEST(ReplaySchedule, CumulativeClock)
{
    SynthesisCluster cluster{2};
    const std::vector<std::vector<double>> batches{{10.0, 10.0}, {20.0}, {}};
    const auto clock = replay_schedule(cluster, batches);
    ASSERT_EQ(clock.size(), 3u);
    EXPECT_DOUBLE_EQ(clock[0], 10.0);
    EXPECT_DOUBLE_EQ(clock[1], 30.0);
    EXPECT_DOUBLE_EQ(clock[2], 30.0);
}

}  // namespace
}  // namespace nautilus::synth
