#include "fft/fft_kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/rng.hpp"

namespace nautilus::fft {
namespace {

using cplx = std::complex<double>;

// O(n^2) reference DFT for validating the fast kernels.
std::vector<cplx> naive_dft(const std::vector<cplx>& x)
{
    const std::size_t n = x.size();
    std::vector<cplx> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        cplx acc{0.0, 0.0};
        for (std::size_t t = 0; t < n; ++t) {
            const double angle =
                -2.0 * std::numbers::pi * static_cast<double>(k * t) / static_cast<double>(n);
            acc += x[t] * cplx{std::cos(angle), std::sin(angle)};
        }
        out[k] = acc;
    }
    return out;
}

std::vector<cplx> random_input(std::size_t n, std::uint64_t seed, double amplitude = 0.4)
{
    Rng rng{seed};
    std::vector<cplx> x(n);
    for (auto& v : x) v = {rng.uniform(-amplitude, amplitude), rng.uniform(-amplitude, amplitude)};
    return x;
}

TEST(FftReference, MatchesNaiveDft)
{
    for (std::size_t n : {2u, 4u, 8u, 16u, 64u}) {
        const auto input = random_input(n, n);
        const auto expected = naive_dft(input);
        auto actual = input;
        fft_reference(actual);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(actual[i].real(), expected[i].real(), 1e-9) << "n=" << n;
            EXPECT_NEAR(actual[i].imag(), expected[i].imag(), 1e-9) << "n=" << n;
        }
    }
}

TEST(FftReference, ImpulseGivesFlatSpectrum)
{
    std::vector<cplx> x(16, {0.0, 0.0});
    x[0] = {1.0, 0.0};
    fft_reference(x);
    for (const auto& v : x) {
        EXPECT_NEAR(v.real(), 1.0, 1e-12);
        EXPECT_NEAR(v.imag(), 0.0, 1e-12);
    }
}

TEST(FftReference, SingleToneConcentratesEnergy)
{
    constexpr std::size_t n = 64;
    constexpr std::size_t bin = 5;
    std::vector<cplx> x(n);
    for (std::size_t t = 0; t < n; ++t) {
        const double angle = 2.0 * std::numbers::pi * bin * t / static_cast<double>(n);
        x[t] = {std::cos(angle), std::sin(angle)};
    }
    fft_reference(x);
    EXPECT_NEAR(std::abs(x[bin]), static_cast<double>(n), 1e-9);
    for (std::size_t k = 0; k < n; ++k)
        if (k != bin) { EXPECT_LT(std::abs(x[k]), 1e-9); }
}

TEST(FftReference, RejectsNonPowerOfTwo)
{
    std::vector<cplx> x(12);
    EXPECT_THROW(fft_reference(x), std::invalid_argument);
    std::vector<cplx> one(1);
    EXPECT_THROW(fft_reference(one), std::invalid_argument);
}

TEST(FftFixed, WideWidthsTrackReferenceClosely)
{
    FixedFftConfig cfg;
    cfg.n = 64;
    cfg.data_width = 24;
    cfg.twiddle_width = 18;
    cfg.scaling = ScalingMode::per_stage;
    const auto input = random_input(64, 7);
    auto ref = input;
    fft_reference(ref);
    const auto fixed = fft_fixed(cfg, input);
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(std::abs(fixed.output[i] - ref[i]), 0.0, 0.05);
}

TEST(FftFixed, PerStageScalingAvoidsOverflow)
{
    FixedFftConfig cfg;
    cfg.n = 256;
    cfg.data_width = 12;
    cfg.twiddle_width = 12;
    cfg.scaling = ScalingMode::per_stage;
    const auto r = fft_fixed(cfg, random_input(256, 9));
    EXPECT_EQ(r.overflow_count, 0u);
    EXPECT_EQ(r.total_shifts, 8);  // log2(256) stages
}

TEST(FftFixed, NoScalingOverflowsOnLargeTransforms)
{
    FixedFftConfig cfg;
    cfg.n = 256;
    cfg.data_width = 10;
    cfg.twiddle_width = 12;
    cfg.scaling = ScalingMode::none;
    const auto r = fft_fixed(cfg, random_input(256, 10));
    EXPECT_GT(r.overflow_count, 0u);
    EXPECT_EQ(r.total_shifts, 0);
}

TEST(FftFixed, BlockFpShiftsOnlyWhenNeeded)
{
    FixedFftConfig cfg;
    cfg.n = 256;
    cfg.data_width = 14;
    cfg.twiddle_width = 14;
    cfg.scaling = ScalingMode::block_fp;
    const auto r = fft_fixed(cfg, random_input(256, 11));
    EXPECT_GT(r.total_shifts, 0);
    EXPECT_LT(r.total_shifts, 9);  // fewer shifts than per-stage scaling
}

TEST(FftFixed, ConfigMismatchThrows)
{
    FixedFftConfig cfg;
    cfg.n = 64;
    EXPECT_THROW(fft_fixed(cfg, random_input(32, 1)), std::invalid_argument);
    std::vector<cplx> bad(12);
    cfg.n = 12;
    EXPECT_THROW(fft_fixed(cfg, bad), std::invalid_argument);
}

TEST(MeasureSnr, WiderDataWidthGivesHigherSnr)
{
    double prev = -1e9;
    for (int dw : {8, 12, 16, 20}) {
        FixedFftConfig cfg;
        cfg.n = 128;
        cfg.data_width = dw;
        cfg.twiddle_width = 18;
        cfg.scaling = ScalingMode::per_stage;
        const double snr = measure_snr_db(cfg, 3);
        EXPECT_GT(snr, prev) << "dw=" << dw;
        prev = snr;
    }
}

TEST(MeasureSnr, WiderTwiddlesHelp)
{
    FixedFftConfig narrow;
    narrow.n = 128;
    narrow.data_width = 20;
    narrow.twiddle_width = 8;
    FixedFftConfig wide = narrow;
    wide.twiddle_width = 18;
    EXPECT_GT(measure_snr_db(wide, 4), measure_snr_db(narrow, 4));
}

TEST(MeasureSnr, BlockFpBeatsPerStageAtLargeN)
{
    // Unconditional per-stage scaling discards one LSB per stage; block
    // floating point shifts only when the data actually grows.
    FixedFftConfig per_stage;
    per_stage.n = 1024;
    per_stage.data_width = 12;
    per_stage.twiddle_width = 14;
    per_stage.scaling = ScalingMode::per_stage;
    FixedFftConfig block = per_stage;
    block.scaling = ScalingMode::block_fp;
    EXPECT_GT(measure_snr_db(block, 5), measure_snr_db(per_stage, 5));
}

TEST(MeasureSnr, ScalingBeatsSaturationAtLargeN)
{
    FixedFftConfig none;
    none.n = 512;
    none.data_width = 12;
    none.twiddle_width = 14;
    none.scaling = ScalingMode::none;
    FixedFftConfig scaled = none;
    scaled.scaling = ScalingMode::per_stage;
    EXPECT_GT(measure_snr_db(scaled, 6), measure_snr_db(none, 6));
}

TEST(MeasureSnr, ReasonableAbsoluteLevels)
{
    FixedFftConfig cfg;
    cfg.n = 256;
    cfg.data_width = 16;
    cfg.twiddle_width = 16;
    cfg.scaling = ScalingMode::per_stage;
    const double snr = measure_snr_db(cfg, 7);
    // 16-bit FFT should land in the tens of dB.
    EXPECT_GT(snr, 40.0);
    EXPECT_LT(snr, 120.0);
}

TEST(MeasureSnr, DeterministicPerSeed)
{
    FixedFftConfig cfg;
    cfg.n = 64;
    cfg.data_width = 12;
    cfg.twiddle_width = 12;
    EXPECT_DOUBLE_EQ(measure_snr_db(cfg, 8), measure_snr_db(cfg, 8));
    EXPECT_THROW(measure_snr_db(cfg, 8, 0), std::invalid_argument);
}

TEST(ScalingNames, Stable)
{
    EXPECT_STREQ(scaling_name(ScalingMode::none), "none");
    EXPECT_STREQ(scaling_name(ScalingMode::per_stage), "per_stage");
    EXPECT_STREQ(scaling_name(ScalingMode::block_fp), "block_fp");
}

}  // namespace
}  // namespace nautilus::fft
