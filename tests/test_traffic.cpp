#include "noc/traffic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace nautilus::noc {
namespace {

TopologyGraph graph_of(TopologyKind kind, int endpoints = 64)
{
    return TopologyGraph::build(make_topology(kind, endpoints));
}

// Every route must be a contiguous walk over existing channels from the
// source's router to the destination's router.
void check_route_validity(const TopologyGraph& g, int src, int dst)
{
    const auto path = g.route(src, dst);
    int at = g.endpoint_router(src);
    for (std::size_t link : path) {
        ASSERT_LT(link, g.channels().size());
        ASSERT_EQ(g.channels()[link].src, at);
        at = g.channels()[link].dst;
    }
    // Butterfly ejection happens at the last stage's row for dst.
    EXPECT_EQ(at, g.info().kind == TopologyKind::butterfly
                      ? (g.num_routers() - g.num_endpoints() / 4) + g.endpoint_router(dst)
                      : g.endpoint_router(dst))
        << topology_name(g.info().kind) << " " << src << "->" << dst;
}

class AllTopologies : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(AllTopologies, AllRoutesAreValidWalks)
{
    const TopologyGraph g = graph_of(GetParam());
    for (int s = 0; s < g.num_endpoints(); s += 3)
        for (int d = 0; d < g.num_endpoints(); d += 5)
            if (s != d) check_route_validity(g, s, d);
}

TEST_P(AllTopologies, ChannelEndpointsAreInRange)
{
    const TopologyGraph g = graph_of(GetParam());
    for (const Channel& c : g.channels()) {
        EXPECT_GE(c.src, 0);
        EXPECT_LT(c.src, g.num_routers());
        EXPECT_GE(c.dst, 0);
        EXPECT_LT(c.dst, g.num_routers());
        EXPECT_NE(c.src, c.dst);
    }
}

TEST_P(AllTopologies, UniformTrafficAnalysisIsSane)
{
    const TopologyGraph g = graph_of(GetParam());
    const TrafficAnalysis t = analyze_uniform_traffic(g);
    EXPECT_GT(t.avg_hops, 0.0);
    EXPECT_GT(t.max_channel_load, 0.0);
    EXPECT_GT(t.saturation_injection, 0.0);
    // Slightly above 1 is possible when co-located endpoints exchange
    // traffic without entering the network (concentration, shared leaves).
    EXPECT_LE(t.saturation_injection, 1.3);
    EXPECT_NEAR(t.saturation_injection * t.max_channel_load, 1.0, 1e-9);
    EXPECT_EQ(t.channel_load.size(), g.channels().size());
}

INSTANTIATE_TEST_SUITE_P(Families, AllTopologies,
                         ::testing::Values(TopologyKind::ring, TopologyKind::double_ring,
                                           TopologyKind::conc_ring,
                                           TopologyKind::conc_double_ring,
                                           TopologyKind::mesh, TopologyKind::torus,
                                           TopologyKind::fat_tree,
                                           TopologyKind::butterfly));

TEST(TrafficRing, HopCountMatchesTheory)
{
    // Mean shortest ring distance for even N is N/4 (uniform over other
    // endpoints: N^2/4 / (N-1)).
    const TopologyGraph g = graph_of(TopologyKind::ring);
    const TrafficAnalysis t = analyze_uniform_traffic(g);
    EXPECT_NEAR(t.avg_hops, 64.0 * 64.0 / 4.0 / 63.0, 1e-9);
}

TEST(TrafficRing, SaturationMatchesBisectionBound)
{
    // Uniform ring capacity: 8/N flits/cycle/node.
    const TopologyGraph g = graph_of(TopologyKind::ring);
    const TrafficAnalysis t = analyze_uniform_traffic(g);
    EXPECT_NEAR(t.saturation_injection, 8.0 / 64.0, 0.01);
}

TEST(TrafficDoubleRing, TwoLanesDoubleTheCapacity)
{
    const TrafficAnalysis one = analyze_uniform_traffic(graph_of(TopologyKind::ring));
    const TrafficAnalysis two =
        analyze_uniform_traffic(graph_of(TopologyKind::double_ring));
    EXPECT_NEAR(two.saturation_injection, 2.0 * one.saturation_injection, 0.02);
    EXPECT_NEAR(two.avg_hops, one.avg_hops, 1e-9);  // same distances
}

TEST(TrafficConcentration, FewerRoutersShorterRoutes)
{
    const TrafficAnalysis plain = analyze_uniform_traffic(graph_of(TopologyKind::ring));
    const TrafficAnalysis conc =
        analyze_uniform_traffic(graph_of(TopologyKind::conc_ring));
    EXPECT_LT(conc.avg_hops, plain.avg_hops / 2.0);
}

TEST(TrafficMesh, HopCountMatchesTheory)
{
    // 8x8 mesh with XY routing: mean |dx| + |dy| over distinct endpoint
    // pairs = 2 * (s/3 - 1/(3s)) * N/(N-1).
    const TopologyGraph g = graph_of(TopologyKind::mesh);
    const TrafficAnalysis t = analyze_uniform_traffic(g);
    const double per_dim = (8.0 / 3.0 - 1.0 / 24.0);
    EXPECT_NEAR(t.avg_hops, 2.0 * per_dim * 64.0 / 63.0, 0.01);
}

TEST(TrafficTorus, WraparoundBeatsMesh)
{
    const TrafficAnalysis mesh = analyze_uniform_traffic(graph_of(TopologyKind::mesh));
    const TrafficAnalysis torus = analyze_uniform_traffic(graph_of(TopologyKind::torus));
    EXPECT_LT(torus.avg_hops, mesh.avg_hops);
    EXPECT_GT(torus.saturation_injection, mesh.saturation_injection * 1.5);
}

TEST(TrafficFatTree, FullBisectionSaturatesNearUnity)
{
    // A 4-ary 3-tree with destination-spread up-routing sustains close to
    // one flit/cycle/node under uniform traffic.
    const TrafficAnalysis t = analyze_uniform_traffic(graph_of(TopologyKind::fat_tree));
    EXPECT_GT(t.saturation_injection, 0.9);
}

TEST(TrafficButterfly, AllRoutesTraverseEveryStage)
{
    const TopologyGraph g = graph_of(TopologyKind::butterfly);
    for (int s = 0; s < 64; s += 7)
        for (int d = 0; d < 64; d += 11)
            if (s != d) { EXPECT_EQ(g.route(s, d).size(), 2u); }  // 3 stages, 2 gaps
}

TEST(TrafficButterfly, UniformLoadAcrossChannels)
{
    // Destination-digit routing on a butterfly balances uniform traffic up
    // to the s != d self-pair exclusion (a ~7% ripple at 64 endpoints).
    const TrafficAnalysis t = analyze_uniform_traffic(graph_of(TopologyKind::butterfly));
    double lo = 1e18;
    double hi = 0.0;
    for (double load : t.channel_load) {
        lo = std::min(lo, load);
        hi = std::max(hi, load);
    }
    EXPECT_NEAR(lo, hi, hi * 0.10);
}

TEST(TrafficOrdering, SaturationFollowsTheFamilyHierarchy)
{
    const double ring =
        analyze_uniform_traffic(graph_of(TopologyKind::ring)).saturation_injection;
    const double mesh =
        analyze_uniform_traffic(graph_of(TopologyKind::mesh)).saturation_injection;
    const double torus =
        analyze_uniform_traffic(graph_of(TopologyKind::torus)).saturation_injection;
    const double ft =
        analyze_uniform_traffic(graph_of(TopologyKind::fat_tree)).saturation_injection;
    EXPECT_LT(ring, mesh);
    EXPECT_LT(mesh, torus);
    EXPECT_LT(torus, ft);
}

TEST(TrafficGraph, EndpointValidation)
{
    const TopologyGraph g = graph_of(TopologyKind::mesh);
    EXPECT_THROW(g.endpoint_router(-1), std::out_of_range);
    EXPECT_THROW(g.endpoint_router(64), std::out_of_range);
    EXPECT_THROW(g.route(0, 64), std::out_of_range);
}

TEST(TrafficGraph, SameRouterPairsHaveEmptyRoutes)
{
    const TopologyGraph g = graph_of(TopologyKind::conc_ring);
    // Endpoints 0..3 share router 0.
    EXPECT_TRUE(g.route(0, 1).empty());
    EXPECT_TRUE(g.route(2, 3).empty());
}

TEST(ZeroLoadLatency, CombinesHopsPipelineAndSerialization)
{
    TrafficAnalysis t;
    t.avg_hops = 4.0;
    // (4+1) hops * (2+1) cycles + ceil(512/64) serialization.
    EXPECT_DOUBLE_EQ(zero_load_latency_cycles(t, 2, 512, 64), 5.0 * 3.0 + 8.0);
    EXPECT_THROW(zero_load_latency_cycles(t, 0, 512, 64), std::invalid_argument);
    EXPECT_THROW(zero_load_latency_cycles(t, 2, 0, 64), std::invalid_argument);
}

TEST(ZeroLoadLatency, WiderFlitsCutSerialization)
{
    TrafficAnalysis t;
    t.avg_hops = 3.0;
    EXPECT_LT(zero_load_latency_cycles(t, 2, 512, 256),
              zero_load_latency_cycles(t, 2, 512, 32));
}

TEST(TrafficScaling, SmallerNetworksAnalyzeToo)
{
    for (auto kind : {TopologyKind::ring, TopologyKind::mesh, TopologyKind::fat_tree}) {
        const TopologyGraph g = graph_of(kind, 16);
        const TrafficAnalysis t = analyze_uniform_traffic(g);
        EXPECT_GT(t.saturation_injection, 0.0) << topology_name(kind);
    }
}

TEST(LoadLatency, ZeroInjectionEqualsZeroLoad)
{
    const TrafficAnalysis t = analyze_uniform_traffic(graph_of(TopologyKind::mesh));
    EXPECT_DOUBLE_EQ(latency_at_load_cycles(t, 2, 512, 64, 0.0),
                     zero_load_latency_cycles(t, 2, 512, 64));
}

TEST(LoadLatency, MonotoneInInjectionRate)
{
    const TrafficAnalysis t = analyze_uniform_traffic(graph_of(TopologyKind::mesh));
    double prev = 0.0;
    for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        const double latency = latency_at_load_cycles(t, 2, 512, 64,
                                                      frac * t.saturation_injection);
        EXPECT_GT(latency, prev);
        prev = latency;
    }
}

TEST(LoadLatency, DivergesAtSaturation)
{
    const TrafficAnalysis t = analyze_uniform_traffic(graph_of(TopologyKind::ring));
    EXPECT_TRUE(std::isinf(
        latency_at_load_cycles(t, 2, 512, 64, t.saturation_injection)));
    EXPECT_TRUE(std::isinf(
        latency_at_load_cycles(t, 2, 512, 64, t.saturation_injection * 2.0)));
    EXPECT_THROW(latency_at_load_cycles(t, 2, 512, 64, -0.1), std::invalid_argument);
}

TEST(LoadLatency, CurveSpansUpToNearSaturation)
{
    const TrafficAnalysis t = analyze_uniform_traffic(graph_of(TopologyKind::torus));
    const auto curve = load_latency_curve(t, 2, 512, 64, 10);
    ASSERT_EQ(curve.size(), 10u);
    EXPECT_DOUBLE_EQ(curve.front().injection, 0.0);
    EXPECT_NEAR(curve.back().injection, t.saturation_injection * 0.98, 1e-9);
    for (const auto& p : curve) EXPECT_TRUE(std::isfinite(p.latency_cycles));
    EXPECT_THROW(load_latency_curve(t, 2, 512, 64, 1), std::invalid_argument);
}

TEST(LoadLatency, FatTreeSustainsLowLatencyAtRingSaturation)
{
    // At the ring's saturation point the fat tree is barely loaded.
    const TrafficAnalysis ring = analyze_uniform_traffic(graph_of(TopologyKind::ring));
    const TrafficAnalysis ft = analyze_uniform_traffic(graph_of(TopologyKind::fat_tree));
    const double rate = ring.saturation_injection * 0.95;
    EXPECT_LT(latency_at_load_cycles(ft, 2, 512, 64, rate),
              latency_at_load_cycles(ring, 2, 512, 64, rate));
}

}  // namespace
}  // namespace nautilus::noc

