#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include "core/atomic_file.hpp"

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/nsga2.hpp"

namespace nautilus {
namespace {

ParameterSpace toy_space()
{
    ParameterSpace space;
    for (int i = 0; i < 4; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 7));
    return space;
}

Evaluation sum_eval(const Genome& g)
{
    double v = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
    return {true, v};
}

std::string temp_path(const std::string& name)
{
    return ::testing::TempDir() + "nautilus_" + name + ".ckpt";
}

std::string slurp(const std::string& path)
{
    std::ifstream in{path};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void spit(const std::string& path, const std::string& text)
{
    std::ofstream out{path, std::ios::trunc};
    out << text;
}

GaCheckpoint sample_ga_checkpoint()
{
    GaCheckpoint cp;
    cp.config_hash = 0xdeadbeefcafef00dull;
    cp.seed = 42;
    cp.generation = 37;
    cp.rng_state = {1u, 2u, 3u, 4u};
    cp.population = {Genome{std::vector<std::uint32_t>{0, 1, 2, 3}},
                     Genome{std::vector<std::uint32_t>{7, 6, 5, 4}}};
    cp.history.push_back({36, 0.1, 1.0 / 3.0, -0.25, 9, 5e-324, 123});
    cp.curve.push_back({10, 0.1});
    cp.curve.push_back({20, 0.30000000000000004});  // exact-bits round-trip probe
    cp.have_best = true;
    cp.best_genome = Genome{std::vector<std::uint32_t>{7, 7, 7, 7}};
    cp.best_eval = {true, 28.0};
    cp.best_so_far = 28.0;
    cp.stall = 3;
    cp.cache = {{Genome{std::vector<std::uint32_t>{0, 0, 0, 0}}, Evaluation{false, -1.5}},
                {Genome{std::vector<std::uint32_t>{1, 2, 3, 4}}, Evaluation{true, 10.0}}};
    cp.distinct = 2;
    cp.calls = 17;
    cp.quarantine = {0x1234u, 0x5678u};
    cp.fault.attempts = 21;
    cp.fault.retries = 4;
    cp.fault.failures = 5;
    cp.fault.timeouts = 1;
    cp.fault.quarantined = 2;
    cp.fault.penalties = 6;
    return cp;
}

TEST(Checkpoint, GaRoundTripIsExact)
{
    const std::string path = temp_path("ga_roundtrip");
    const GaCheckpoint cp = sample_ga_checkpoint();
    save_checkpoint(path, cp);
    EXPECT_EQ(checkpoint_engine(path), "ga");

    const GaCheckpoint r = load_ga_checkpoint(path);
    EXPECT_EQ(r.config_hash, cp.config_hash);
    EXPECT_EQ(r.seed, cp.seed);
    EXPECT_EQ(r.generation, cp.generation);
    EXPECT_EQ(r.rng_state, cp.rng_state);
    ASSERT_EQ(r.population.size(), cp.population.size());
    for (std::size_t i = 0; i < cp.population.size(); ++i)
        EXPECT_EQ(r.population[i].genes(), cp.population[i].genes());
    ASSERT_EQ(r.history.size(), 1u);
    EXPECT_EQ(r.history[0].generation, 36u);
    // Doubles are stored as IEEE-754 bit patterns: == must hold exactly,
    // including the denormal.
    EXPECT_EQ(r.history[0].best, 0.1);
    EXPECT_EQ(r.history[0].mean, 1.0 / 3.0);
    EXPECT_EQ(r.history[0].worst, -0.25);
    EXPECT_EQ(r.history[0].best_so_far, 5e-324);
    ASSERT_EQ(r.curve.size(), 2u);
    EXPECT_EQ(r.curve[1].best, 0.30000000000000004);
    EXPECT_TRUE(r.have_best);
    EXPECT_EQ(r.best_genome.genes(), cp.best_genome.genes());
    EXPECT_EQ(r.best_eval.feasible, cp.best_eval.feasible);
    EXPECT_EQ(r.best_eval.value, cp.best_eval.value);
    EXPECT_EQ(r.stall, cp.stall);
    ASSERT_EQ(r.cache.size(), cp.cache.size());
    for (std::size_t i = 0; i < cp.cache.size(); ++i) {
        EXPECT_EQ(r.cache[i].first.genes(), cp.cache[i].first.genes());
        EXPECT_EQ(r.cache[i].second.feasible, cp.cache[i].second.feasible);
        EXPECT_EQ(r.cache[i].second.value, cp.cache[i].second.value);
    }
    EXPECT_EQ(r.distinct, cp.distinct);
    EXPECT_EQ(r.calls, cp.calls);
    EXPECT_EQ(r.quarantine, cp.quarantine);
    EXPECT_EQ(r.fault, cp.fault);
    std::remove(path.c_str());
}

TEST(Checkpoint, Nsga2RoundTripIsExact)
{
    const std::string path = temp_path("nsga2_roundtrip");
    Nsga2Checkpoint cp;
    cp.config_hash = 0xfeedface;
    cp.seed = 7;
    cp.generation = 11;
    cp.objectives = 2;
    cp.rng_state = {9u, 8u, 7u, 6u};
    cp.population = {Genome{std::vector<std::uint32_t>{1, 1, 1, 1}}};
    cp.population_values = {{3.5, -0.125}};
    cp.archive = {Genome{std::vector<std::uint32_t>{2, 2, 2, 2}}};
    cp.archive_values = {{8.0, 0.1}};
    cp.cache = {{Genome{std::vector<std::uint32_t>{0, 0, 0, 0}}, std::nullopt},
                {Genome{std::vector<std::uint32_t>{1, 1, 1, 1}},
                 std::vector<double>{3.5, -0.125}}};
    cp.distinct = 2;
    cp.calls = 4;
    cp.quarantine = {99u};
    cp.fault.attempts = 5;
    cp.fault.quarantined = 1;
    save_checkpoint(path, cp);
    EXPECT_EQ(checkpoint_engine(path), "nsga2");

    const Nsga2Checkpoint r = load_nsga2_checkpoint(path);
    EXPECT_EQ(r.config_hash, cp.config_hash);
    EXPECT_EQ(r.generation, cp.generation);
    EXPECT_EQ(r.objectives, 2u);
    EXPECT_EQ(r.rng_state, cp.rng_state);
    ASSERT_EQ(r.population.size(), 1u);
    EXPECT_EQ(r.population[0].genes(), cp.population[0].genes());
    EXPECT_EQ(r.population_values, cp.population_values);
    ASSERT_EQ(r.archive.size(), 1u);
    EXPECT_EQ(r.archive_values, cp.archive_values);
    ASSERT_EQ(r.cache.size(), 2u);
    EXPECT_FALSE(r.cache[0].second.has_value());
    ASSERT_TRUE(r.cache[1].second.has_value());
    EXPECT_EQ(*r.cache[1].second, (std::vector<double>{3.5, -0.125}));
    EXPECT_EQ(r.quarantine, cp.quarantine);
    EXPECT_EQ(r.fault, cp.fault);
    std::remove(path.c_str());
}

TEST(Checkpoint, LoaderRejectsMissingFileVersionAndEngineMismatch)
{
    EXPECT_THROW(load_ga_checkpoint(temp_path("does_not_exist")), std::runtime_error);

    const std::string path = temp_path("tampered");
    save_checkpoint(path, sample_ga_checkpoint());

    // Wrong engine: a GA file is not an NSGA-II checkpoint.
    EXPECT_THROW(load_nsga2_checkpoint(path), std::runtime_error);

    // Version bump: loaders must refuse formats they do not understand.
    const std::string original = slurp(path);
    std::string bumped = original;
    const std::string header =
        "nautilus-checkpoint " + std::to_string(k_checkpoint_version);
    const auto pos = bumped.find(header);
    ASSERT_NE(pos, std::string::npos);
    bumped.replace(pos, header.size(), "nautilus-checkpoint 999");
    spit(path, bumped);
    EXPECT_THROW(load_ga_checkpoint(path), std::runtime_error);

    // Truncation: a file missing its trailer is rejected, not half-loaded.
    spit(path, original.substr(0, original.size() / 2));
    EXPECT_THROW(load_ga_checkpoint(path), std::runtime_error);
    std::remove(path.c_str());
}

GaConfig golden_config(std::size_t workers)
{
    GaConfig cfg;
    cfg.generations = 80;
    cfg.seed = 1234;
    cfg.eval_workers = workers;
    cfg.stall_generations = 0;  // run the full schedule
    return cfg;
}

// The ISSUE's golden test: an 80-generation run killed at generation 37 and
// resumed must reproduce the uninterrupted run bit-for-bit -- best fitness,
// final population, RNG stream position, evaluation counts and per-generation
// history -- at 1 and at 4 evaluation workers.
TEST(CheckpointResume, GaResumeIsBitForBitIdenticalAtAnyWorkerCount)
{
    const auto space = toy_space();
    RunResult straight_w1;  // reference runs compared across worker counts too
    RunResult resumed_w1;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        const GaEngine straight_engine{space, golden_config(workers),
                                       Direction::maximize, sum_eval,
                                       HintSet::none(space)};
        const RunResult straight = straight_engine.run();
        EXPECT_FALSE(straight.halted);
        ASSERT_EQ(straight.history.size(), 80u);

        const std::string path =
            temp_path("ga_resume_w" + std::to_string(workers));
        GaConfig halting = golden_config(workers);
        halting.checkpoint_path = path;
        halting.halt_at_generation = 37;
        const GaEngine halting_engine{space, halting, Direction::maximize, sum_eval,
                                      HintSet::none(space)};
        const RunResult partial = halting_engine.run();
        EXPECT_TRUE(partial.halted);
        EXPECT_EQ(partial.history.size(), 37u);

        const RunResult resumed = straight_engine.resume(path);
        EXPECT_FALSE(resumed.halted);
        EXPECT_EQ(resumed.start_generation, 37u);

        // Identical outcome in every observable the engine exposes.
        EXPECT_EQ(resumed.best_genome.genes(), straight.best_genome.genes());
        EXPECT_EQ(resumed.best_eval.value, straight.best_eval.value);
        EXPECT_EQ(resumed.distinct_evals, straight.distinct_evals);
        EXPECT_EQ(resumed.total_eval_calls, straight.total_eval_calls);
        EXPECT_EQ(resumed.final_rng_state, straight.final_rng_state);
        ASSERT_EQ(resumed.final_population.size(), straight.final_population.size());
        for (std::size_t i = 0; i < straight.final_population.size(); ++i)
            EXPECT_EQ(resumed.final_population[i].genes(),
                      straight.final_population[i].genes());
        ASSERT_EQ(resumed.history.size(), straight.history.size());
        for (std::size_t g = 0; g < straight.history.size(); ++g) {
            EXPECT_EQ(resumed.history[g].generation, straight.history[g].generation);
            EXPECT_EQ(resumed.history[g].best, straight.history[g].best);
            EXPECT_EQ(resumed.history[g].mean, straight.history[g].mean);
            EXPECT_EQ(resumed.history[g].best_so_far, straight.history[g].best_so_far);
            EXPECT_EQ(resumed.history[g].distinct_evals,
                      straight.history[g].distinct_evals);
        }
        ASSERT_EQ(resumed.curve.points().size(), straight.curve.points().size());
        for (std::size_t i = 0; i < straight.curve.points().size(); ++i) {
            EXPECT_EQ(resumed.curve.points()[i].evals, straight.curve.points()[i].evals);
            EXPECT_EQ(resumed.curve.points()[i].best, straight.curve.points()[i].best);
        }

        if (workers == 1) {
            straight_w1 = straight;
            resumed_w1 = resumed;
        }
        else {
            // Worker count changes nothing: serial and 4-way runs agree.
            EXPECT_EQ(straight.final_rng_state, straight_w1.final_rng_state);
            EXPECT_EQ(straight.distinct_evals, straight_w1.distinct_evals);
            EXPECT_EQ(resumed.best_eval.value, resumed_w1.best_eval.value);
            EXPECT_EQ(resumed.final_rng_state, resumed_w1.final_rng_state);
        }
        std::remove(path.c_str());
    }
}

TEST(CheckpointResume, GaResumeAtDifferentWorkerCountStillMatches)
{
    // Checkpoint under 1 worker, resume under 4: the worker count is
    // deliberately outside the config fingerprint.
    const auto space = toy_space();
    const std::string path = temp_path("ga_cross_workers");
    GaConfig halting = golden_config(1);
    halting.checkpoint_path = path;
    halting.halt_at_generation = 37;
    const GaEngine halting_engine{space, halting, Direction::maximize, sum_eval,
                                  HintSet::none(space)};
    ASSERT_TRUE(halting_engine.run().halted);

    const GaEngine straight_engine{space, golden_config(1), Direction::maximize,
                                   sum_eval, HintSet::none(space)};
    const RunResult straight = straight_engine.run();
    const GaEngine wide_engine{space, golden_config(4), Direction::maximize, sum_eval,
                               HintSet::none(space)};
    const RunResult resumed = wide_engine.resume(path);
    EXPECT_EQ(resumed.best_eval.value, straight.best_eval.value);
    EXPECT_EQ(resumed.distinct_evals, straight.distinct_evals);
    EXPECT_EQ(resumed.final_rng_state, straight.final_rng_state);
    std::remove(path.c_str());
}

TEST(CheckpointResume, ResumeRejectsConfigFingerprintMismatch)
{
    const auto space = toy_space();
    const std::string path = temp_path("ga_fingerprint");
    GaConfig halting = golden_config(1);
    halting.checkpoint_path = path;
    halting.halt_at_generation = 10;
    const GaEngine halting_engine{space, halting, Direction::maximize, sum_eval,
                                  HintSet::none(space)};
    ASSERT_TRUE(halting_engine.run().halted);

    GaConfig different = golden_config(1);
    different.mutation_rate = 0.25;  // determinism-relevant change
    const GaEngine mismatched{space, different, Direction::maximize, sum_eval,
                              HintSet::none(space)};
    EXPECT_THROW(mismatched.resume(path), std::runtime_error);

    // The run's seed travels in the checkpoint, not the resuming engine's
    // config: resuming with a different config seed still continues the
    // checkpointed run (and still validates everything else).
    GaConfig reseeded = golden_config(1);
    reseeded.seed = 999;
    const GaEngine other_seed{space, reseeded, Direction::maximize, sum_eval,
                              HintSet::none(space)};
    const RunResult resumed = other_seed.resume(path);
    const GaEngine reference{space, golden_config(1), Direction::maximize, sum_eval,
                             HintSet::none(space)};
    const RunResult straight = reference.run();
    EXPECT_EQ(resumed.best_eval.value, straight.best_eval.value);
    EXPECT_EQ(resumed.final_rng_state, straight.final_rng_state);
    std::remove(path.c_str());
}

TEST(CheckpointResume, ResumeRejectsChangedHintsAtEqualConfidence)
{
    // Regression: config_fingerprint used to hash only hints.confidence(),
    // so a resume under *different per-parameter hints* (importance, bias,
    // target, step_scale) at the same confidence silently produced a run
    // that matched neither the original nor a fresh one.  The fingerprint
    // now covers the full HintSet.
    const auto space = toy_space();
    const std::string path = temp_path("ga_hint_fingerprint");

    const auto make_hints = [&](double importance, std::optional<double> bias) {
        HintSet hints = HintSet::none(space);
        hints.set_confidence(0.6);
        hints.param(0).importance = importance;
        hints.param(1).bias = bias;
        hints.validate(space);
        return hints;
    };
    const HintSet original = make_hints(30.0, 0.8);

    GaConfig halting = golden_config(1);
    halting.checkpoint_path = path;
    halting.halt_at_generation = 10;
    const GaEngine halting_engine{space, halting, Direction::maximize, sum_eval, original};
    ASSERT_TRUE(halting_engine.run().halted);

    // Same confidence, different importance: must be rejected.
    const GaEngine changed_importance{space, golden_config(1), Direction::maximize,
                                      sum_eval, make_hints(5.0, 0.8)};
    EXPECT_THROW(changed_importance.resume(path), std::runtime_error);

    // Same confidence, different bias: must be rejected.
    const GaEngine changed_bias{space, golden_config(1), Direction::maximize, sum_eval,
                                make_hints(30.0, -0.8)};
    EXPECT_THROW(changed_bias.resume(path), std::runtime_error);

    // Same confidence, bias dropped entirely: must be rejected.
    const GaEngine dropped_bias{space, golden_config(1), Direction::maximize, sum_eval,
                                make_hints(30.0, std::nullopt)};
    EXPECT_THROW(dropped_bias.resume(path), std::runtime_error);

    // Identical hints resume bit-for-bit.
    const GaEngine same{space, golden_config(1), Direction::maximize, sum_eval, original};
    const RunResult resumed = same.resume(path);
    const GaEngine reference{space, golden_config(1), Direction::maximize, sum_eval,
                             original};
    const RunResult straight = reference.run();
    EXPECT_EQ(resumed.best_eval.value, straight.best_eval.value);
    EXPECT_EQ(resumed.distinct_evals, straight.distinct_evals);
    EXPECT_EQ(resumed.final_rng_state, straight.final_rng_state);
    std::remove(path.c_str());
}

TEST(CheckpointResume, Nsga2ResumeIsBitForBitIdentical)
{
    const auto space = toy_space();
    const MultiEvalFn eval = [](const Genome& g) -> std::optional<std::vector<double>> {
        double sum = 0.0;
        double spread = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) {
            sum += g.gene(i);
            spread += static_cast<double>(g.gene(i)) * static_cast<double>(i);
        }
        return std::vector<double>{sum, spread};
    };
    const std::vector<Direction> dirs{Direction::maximize, Direction::minimize};

    MultiObjectiveConfig base;
    base.generations = 30;
    base.seed = 77;
    const Nsga2Engine straight_engine{space, base, dirs, eval, HintSet::none(space)};
    const MultiObjectiveResult straight = straight_engine.run();
    EXPECT_FALSE(straight.halted);

    const std::string path = temp_path("nsga2_resume");
    MultiObjectiveConfig halting = base;
    halting.checkpoint_path = path;
    halting.halt_at_generation = 13;
    const Nsga2Engine halting_engine{space, halting, dirs, eval, HintSet::none(space)};
    const MultiObjectiveResult partial = halting_engine.run();
    EXPECT_TRUE(partial.halted);

    const MultiObjectiveResult resumed = straight_engine.resume(path);
    EXPECT_FALSE(resumed.halted);
    EXPECT_EQ(resumed.start_generation, 13u);
    EXPECT_EQ(resumed.distinct_evals, straight.distinct_evals);
    EXPECT_EQ(resumed.total_eval_calls, straight.total_eval_calls);
    ASSERT_EQ(resumed.front.size(), straight.front.size());
    for (std::size_t i = 0; i < straight.front.size(); ++i) {
        EXPECT_EQ(resumed.front[i].genome.genes(), straight.front[i].genome.genes());
        EXPECT_EQ(resumed.front[i].values, straight.front[i].values);
    }
    std::remove(path.c_str());
}

TEST(CheckpointResume, Nsga2ResumeRejectsWrongObjectiveCount)
{
    const auto space = toy_space();
    const MultiEvalFn two = [](const Genome& g) -> std::optional<std::vector<double>> {
        return std::vector<double>{static_cast<double>(g.gene(0)),
                                   static_cast<double>(g.gene(1))};
    };
    const std::string path = temp_path("nsga2_objectives");
    MultiObjectiveConfig halting;
    halting.generations = 20;
    halting.seed = 5;
    halting.checkpoint_path = path;
    halting.halt_at_generation = 7;
    const Nsga2Engine engine{space, halting,
                             {Direction::maximize, Direction::minimize}, two,
                             HintSet::none(space)};
    ASSERT_TRUE(engine.run().halted);

    const MultiEvalFn three = [](const Genome& g) -> std::optional<std::vector<double>> {
        return std::vector<double>{static_cast<double>(g.gene(0)),
                                   static_cast<double>(g.gene(1)), 0.0};
    };
    MultiObjectiveConfig plain;
    plain.generations = 20;
    plain.seed = 5;
    const Nsga2Engine mismatched{
        space, plain,
        {Direction::maximize, Direction::minimize, Direction::minimize}, three,
        HintSet::none(space)};
    EXPECT_THROW(mismatched.resume(path), std::runtime_error);
    std::remove(path.c_str());
}

// -- atomic_write_file (the checkpoint commit path) -------------------------

TEST(AtomicFile, WritesContentAndLeavesNoTempBehind)
{
    const std::string path = temp_path("atomic_write");
    atomic_write_file(path, "hello\nworld\n");
    EXPECT_EQ(slurp(path), "hello\nworld\n");
    EXPECT_FALSE(std::ifstream{path + ".tmp"}.good());

    // Overwrite replaces the full content, never appends or truncates short.
    atomic_write_file(path, "v2");
    EXPECT_EQ(slurp(path), "v2");
    std::remove(path.c_str());
}

TEST(AtomicFile, FailsLoudlyWhenDirectoryIsMissing)
{
    EXPECT_THROW(
        atomic_write_file(::testing::TempDir() + "no_such_dir_xyz/file", "x"),
        std::runtime_error);
}

TEST(AtomicFile, AppendReturnsResultingSize)
{
    const std::string path = temp_path("atomic_append");
    std::remove(path.c_str());
    EXPECT_EQ(append_file(path, "abc\n"), 4u);
    EXPECT_EQ(append_file(path, "defgh\n"), 10u);
    EXPECT_EQ(slurp(path), "abc\ndefgh\n");
    std::remove(path.c_str());
}

}  // namespace
}  // namespace nautilus
