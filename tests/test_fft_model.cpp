#include "fft/fft_generator.hpp"

#include <gtest/gtest.h>

namespace nautilus::fft {
namespace {

using ip::Metric;

FftConfig base_config()
{
    FftConfig c;
    c.log2n = 8;
    c.streaming_width = 4;
    c.radix = 2;
    c.data_width = 16;
    c.twiddle_width = 16;
    c.scaling = ScalingMode::per_stage;
    return c;
}

TEST(FftSpace, MatchesPaperScale)
{
    const ParameterSpace space = make_fft_space();
    EXPECT_EQ(space.size(), fft_gene::count);
    // 6 varied parameters, ~12,000 feasible instances (paper 4.1).
    EXPECT_EQ(space.exact_cardinality(), 18900u);
    std::size_t feasible = 0;
    for (std::size_t rank = 0; rank < 18900; ++rank)
        if (decode_fft(space, Genome::from_rank(space, rank)).feasible()) ++feasible;
    EXPECT_EQ(feasible, 10800u);
}

TEST(FftConfig, FeasibilityRules)
{
    FftConfig c = base_config();
    EXPECT_TRUE(c.feasible());
    c.radix = 8;
    c.log2n = 8;  // 8 % 3 != 0
    EXPECT_FALSE(c.feasible());
    c.log2n = 9;
    c.streaming_width = 8;
    EXPECT_TRUE(c.feasible());
    c.streaming_width = 4;  // width < radix
    EXPECT_FALSE(c.feasible());
}

TEST(FftConfig, StageArithmetic)
{
    FftConfig c = base_config();
    EXPECT_EQ(c.n(), 256);
    EXPECT_EQ(c.stages(), 8);
    EXPECT_EQ(c.butterflies_per_stage(), 2);
    c.radix = 4;
    EXPECT_EQ(c.stages(), 4);
    EXPECT_EQ(c.butterflies_per_stage(), 1);
}

TEST(FftConfig, KeyDistinguishesConfigs)
{
    FftConfig a = base_config();
    FftConfig b = base_config();
    EXPECT_EQ(a.config_key(), b.config_key());
    b.scaling = ScalingMode::block_fp;
    EXPECT_NE(a.config_key(), b.config_key());
}

TEST(FftDecode, RoundTrip)
{
    const ParameterSpace space = make_fft_space();
    Genome g = Genome::zeros(space);
    g.set_gene(fft_gene::log2n, 3);           // 9
    g.set_gene(fft_gene::streaming_width, 2); // 8
    g.set_gene(fft_gene::radix, 2);           // 8
    g.set_gene(fft_gene::data_width, 5);      // 18
    g.set_gene(fft_gene::twiddle_width, 1);   // 10
    g.set_gene(fft_gene::scaling, 2);         // block_fp
    const FftConfig c = decode_fft(space, g);
    EXPECT_EQ(c.log2n, 9);
    EXPECT_EQ(c.streaming_width, 8);
    EXPECT_EQ(c.radix, 8);
    EXPECT_EQ(c.data_width, 18);
    EXPECT_EQ(c.twiddle_width, 10);
    EXPECT_EQ(c.scaling, ScalingMode::block_fp);
    EXPECT_TRUE(c.feasible());
}

TEST(FftArea, InfeasibleConfigRejected)
{
    const auto tech = synth::FpgaTech::virtex6_lx760t();
    FftConfig c = base_config();
    c.streaming_width = 2;
    c.radix = 4;
    EXPECT_THROW(fft_area(c, tech), std::invalid_argument);
    EXPECT_THROW(fft_paths(c, tech), std::invalid_argument);
}

TEST(FftArea, GrowsWithSizeWidthAndDataWidth)
{
    const auto tech = synth::FpgaTech::virtex6_lx760t();
    const FftConfig base = base_config();
    const double base_luts = fft_area(base, tech).total().equivalent_luts(tech);

    // Compare sizes whose stream buffers both map to LUT-RAM; once buffers
    // spill to block RAM, equivalent LUTs legitimately drop (the BRAM
    // mapping the real XST flow also performs).
    FftConfig bigger_n = base;
    bigger_n.log2n = 9;
    EXPECT_GT(fft_area(bigger_n, tech).total().equivalent_luts(tech), base_luts);

    FftConfig wider = base;
    wider.streaming_width = 16;
    EXPECT_GT(fft_area(wider, tech).total().equivalent_luts(tech), base_luts);

    FftConfig deeper = base;
    deeper.data_width = 26;
    EXPECT_GT(fft_area(deeper, tech).total().equivalent_luts(tech), base_luts);
}

TEST(FftArea, DspEligibilityFollowsWidths)
{
    const auto tech = synth::FpgaTech::virtex6_lx760t();
    FftConfig dsp = base_config();
    EXPECT_TRUE(uses_dsp(dsp, tech));
    FftConfig lut_mult = dsp;
    lut_mult.data_width = 24;
    EXPECT_FALSE(uses_dsp(lut_mult, tech));
    EXPECT_GT(fft_area(lut_mult, tech).multipliers.luts,
              fft_area(dsp, tech).multipliers.luts);
    EXPECT_GT(fft_area(dsp, tech).multipliers.dsps, 0.0);
    EXPECT_DOUBLE_EQ(fft_area(lut_mult, tech).multipliers.dsps, 0.0);
}

TEST(FftArea, LargeTransformsUseBlockRam)
{
    const auto tech = synth::FpgaTech::virtex6_lx760t();
    FftConfig small = base_config();
    small.log2n = 6;
    FftConfig large = base_config();
    large.log2n = 12;
    EXPECT_DOUBLE_EQ(fft_area(small, tech).permutation.bram_bits, 0.0);
    EXPECT_GT(fft_area(large, tech).permutation.bram_bits, 0.0);
}

TEST(FftArea, ScalingDatapathCosts)
{
    const auto tech = synth::FpgaTech::virtex6_lx760t();
    FftConfig none = base_config();
    none.scaling = ScalingMode::none;
    FftConfig per_stage = base_config();
    FftConfig block = base_config();
    block.scaling = ScalingMode::block_fp;
    EXPECT_DOUBLE_EQ(fft_area(none, tech).scaling.luts, 0.0);
    EXPECT_GT(fft_area(per_stage, tech).scaling.luts, 0.0);
    EXPECT_GT(fft_area(block, tech).scaling.luts, fft_area(per_stage, tech).scaling.luts);
}

TEST(FftPaths, WiderDataSlowerClock)
{
    const auto tech = synth::FpgaTech::virtex6_lx760t();
    FftConfig narrow = base_config();
    narrow.data_width = 8;
    FftConfig wide = base_config();
    wide.data_width = 26;
    EXPECT_GT(synth::fmax_mhz(fft_paths(narrow, tech), tech),
              synth::fmax_mhz(fft_paths(wide, tech), tech));
}

TEST(FftThroughput, ScalesWithStreamingWidth)
{
    FftConfig c = base_config();
    EXPECT_DOUBLE_EQ(fft_throughput_msps(c, 250.0), 1000.0);
    c.streaming_width = 16;
    EXPECT_DOUBLE_EQ(fft_throughput_msps(c, 250.0), 4000.0);
}

TEST(FftGenerator, InfeasiblePointsReported)
{
    const FftGenerator gen;
    Genome g = Genome::zeros(gen.space());
    g.set_gene(fft_gene::radix, 2);            // radix 8
    g.set_gene(fft_gene::streaming_width, 0);  // width 2 < radix
    EXPECT_FALSE(gen.evaluate(g).feasible);
}

TEST(FftGenerator, FeasiblePointHasAllMetrics)
{
    const FftGenerator gen;
    const Genome g = Genome::zeros(gen.space());  // n=64 w=2 r=2 dw=8 tw=8 none
    const auto mv = gen.evaluate(g);
    ASSERT_TRUE(mv.feasible);
    for (Metric m : gen.metrics()) EXPECT_TRUE(mv.has(m)) << ip::metric_name(m);
}

TEST(FftGenerator, SnrCanBeDisabled)
{
    const FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), /*measure_snr=*/false};
    const Genome g = Genome::zeros(gen.space());
    EXPECT_FALSE(gen.evaluate(g).has(Metric::snr_db));
}

TEST(FftGenerator, MinimumLutsNearPaperFloor)
{
    // Fig. 6 converges to ~540 LUTs; our model's floor must be comparable.
    const FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), false};
    double min_luts = 1e18;
    for (std::size_t rank = 0; rank < 18900; rank += 3) {
        const auto mv = gen.evaluate(Genome::from_rank(gen.space(), rank));
        if (mv.feasible) min_luts = std::min(min_luts, mv.get(Metric::area_luts));
    }
    EXPECT_GT(min_luts, 300.0);
    EXPECT_LT(min_luts, 900.0);
}

TEST(FftGenerator, SnrRespondsToDataWidth)
{
    const FftGenerator gen;
    Genome narrow = Genome::zeros(gen.space());
    narrow.set_gene(fft_gene::scaling, 1);  // per_stage
    Genome wide = narrow;
    wide.set_gene(fft_gene::data_width, 9);  // 26 bits
    EXPECT_GT(gen.evaluate(wide).get(Metric::snr_db),
              gen.evaluate(narrow).get(Metric::snr_db));
}

TEST(FftGenerator, AuthorHintsValidateForAllMetrics)
{
    const FftGenerator gen;
    for (Metric m : gen.metrics())
        EXPECT_NO_THROW(gen.author_hints(m).validate(gen.space())) << ip::metric_name(m);
}

TEST(FftGenerator, ThroughputPerLutHintsUseTarget)
{
    const FftGenerator gen;
    const HintSet h = gen.author_hints(Metric::throughput_per_lut);
    EXPECT_TRUE(h.param(fft_gene::streaming_width).target.has_value());
    ASSERT_TRUE(h.param(fft_gene::data_width).bias.has_value());
    EXPECT_LT(*h.param(fft_gene::data_width).bias, 0.0);
}

class FeasibleConfigSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FeasibleConfigSweep, DescriptorsAreWellFormed)
{
    const auto tech = synth::FpgaTech::virtex6_lx760t();
    const ParameterSpace space = make_fft_space();
    const FftConfig c = decode_fft(space, Genome::from_rank(space, GetParam()));
    if (!c.feasible()) GTEST_SKIP() << "infeasible rank";
    const synth::DesignDescriptor d = fft_descriptor(c, tech);
    EXPECT_FALSE(d.paths.empty());
    EXPECT_GT(d.resources.luts, 0.0);
    EXPECT_GE(d.resources.dsps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, FeasibleConfigSweep,
                         ::testing::Values(0u, 100u, 1111u, 5000u, 9999u, 15000u, 18899u));

}  // namespace
}  // namespace nautilus::fft
