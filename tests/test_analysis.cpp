#include "ip/analysis.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace nautilus::ip {
namespace {

// area = 50x + 5y (+z has no effect); one unordered mode shifts everything.
class EffectGenerator final : public IpGenerator {
public:
    EffectGenerator()
    {
        space_.add("x", ParamDomain::int_range(0, 4));
        space_.add("y", ParamDomain::int_range(0, 4));
        space_.add("z", ParamDomain::int_range(0, 4));
        space_.add("mode", ParamDomain::categorical({"a", "b"}));
    }
    std::string name() const override { return "effect"; }
    const ParameterSpace& space() const override { return space_; }
    std::vector<Metric> metrics() const override { return {Metric::area_luts}; }
    MetricValues evaluate(const Genome& g) const override
    {
        MetricValues mv;
        mv.set(Metric::area_luts,
               100.0 + 50.0 * g.gene(0) + 5.0 * g.gene(1) + (g.gene(3) == 1 ? 200.0 : 0.0));
        return mv;
    }
    HintSet author_hints(Metric m) const override
    {
        HintSet h = HintSet::none(space_);
        if (m == Metric::area_luts) {
            h.param(0).bias = 0.9;
            h.param(0).importance = 90.0;
            h.param(1).bias = 0.4;
        }
        return h;
    }

private:
    ParameterSpace space_;
};

class AnalysisTest : public ::testing::Test {
protected:
    EffectGenerator gen;
    Dataset ds = Dataset::enumerate(gen);
};

TEST_F(AnalysisTest, MainEffectsRankParametersCorrectly)
{
    const auto effects = main_effects(ds, gen, Metric::area_luts);
    ASSERT_EQ(effects.size(), 4u);
    EXPECT_DOUBLE_EQ(effects[0].effect_range, 200.0);  // x: 50 * 4
    EXPECT_DOUBLE_EQ(effects[1].effect_range, 20.0);    // y: 5 * 4
    EXPECT_DOUBLE_EQ(effects[2].effect_range, 0.0);     // z: no effect
    EXPECT_DOUBLE_EQ(effects[3].effect_range, 200.0);   // mode shift
}

TEST_F(AnalysisTest, TrendsFollowSigns)
{
    const auto effects = main_effects(ds, gen, Metric::area_luts);
    EXPECT_GT(effects[0].trend, 0.9);
    EXPECT_GT(effects[1].trend, 0.9);
    EXPECT_DOUBLE_EQ(effects[3].trend, 0.0);  // unordered: no trend
}

TEST_F(AnalysisTest, MeansPerValueAreExact)
{
    const auto effects = main_effects(ds, gen, Metric::area_luts);
    // For x: mean over y,z,mode of 100+50x+5y+(mode? 200:0) = 210 + 50x.
    EXPECT_DOUBLE_EQ(effects[0].mean_by_value[0], 210.0);
    EXPECT_DOUBLE_EQ(effects[0].mean_by_value[4], 410.0);
}

TEST_F(AnalysisTest, CountsCoverTheFullSlice)
{
    const auto effects = main_effects(ds, gen, Metric::area_luts);
    // Each x value owns 5*5*2 = 50 entries of the 250-point space.
    EXPECT_EQ(effects[0].count_by_value[4], 50u);
    EXPECT_EQ(effects[0].count_by_value[0], 50u);
}

// Infeasible entries must be excluded from means and counts.
class HoleyGenerator final : public IpGenerator {
public:
    HoleyGenerator() { space_.add("x", ParamDomain::int_range(0, 3)); }
    std::string name() const override { return "holey"; }
    const ParameterSpace& space() const override { return space_; }
    std::vector<Metric> metrics() const override { return {Metric::area_luts}; }
    MetricValues evaluate(const Genome& g) const override
    {
        if (g.gene(0) == 3) return MetricValues::infeasible_point();
        MetricValues mv;
        mv.set(Metric::area_luts, 10.0 * g.gene(0));
        return mv;
    }

private:
    ParameterSpace space_;
};

TEST(AnalysisInfeasible, CountsExcludeInfeasible)
{
    const HoleyGenerator gen;
    const Dataset ds = Dataset::enumerate(gen);
    const auto effects = main_effects(ds, gen, Metric::area_luts);
    EXPECT_EQ(effects[0].count_by_value[0], 1u);
    EXPECT_EQ(effects[0].count_by_value[3], 0u);
    EXPECT_DOUBLE_EQ(effects[0].effect_range, 20.0);  // feasible values 0..20
}

TEST_F(AnalysisTest, ReportPrintsAllParameters)
{
    const auto effects = main_effects(ds, gen, Metric::area_luts);
    std::ostringstream out;
    print_sensitivity_report(out, gen, Metric::area_luts, effects);
    const std::string text = out.str();
    for (const auto& p : gen.space()) EXPECT_NE(text.find(p.name), std::string::npos);
    EXPECT_NE(text.find("area_luts"), std::string::npos);
}

TEST_F(AnalysisTest, EffectsToHintsMatchStructure)
{
    const auto effects = main_effects(ds, gen, Metric::area_luts);
    const HintSet hints = effects_to_hints(gen, effects);
    EXPECT_NO_THROW(hints.validate(gen.space()));
    // x: strong positive bias; z: negligible; mode: importance without bias.
    ASSERT_TRUE(hints.param(0).bias.has_value());
    EXPECT_GT(*hints.param(0).bias, 0.5);
    EXPECT_DOUBLE_EQ(hints.param(2).importance, 1.0);
    EXPECT_FALSE(hints.param(2).bias.has_value());
    EXPECT_GT(hints.param(3).importance, 50.0);
    EXPECT_FALSE(hints.param(3).bias.has_value());
}

TEST_F(AnalysisTest, DerivedHintSignsAgreeWithAuthor)
{
    const auto effects = main_effects(ds, gen, Metric::area_luts);
    const HintSet derived = effects_to_hints(gen, effects);
    const HintSet authored = gen.author_hints(Metric::area_luts);
    for (std::size_t p = 0; p < gen.space().size(); ++p) {
        if (!derived.param(p).bias || !authored.param(p).bias) continue;
        EXPECT_EQ(*derived.param(p).bias > 0, *authored.param(p).bias > 0) << p;
    }
}

TEST_F(AnalysisTest, Validation)
{
    EXPECT_THROW(main_effects(Dataset{}, gen, Metric::area_luts), std::invalid_argument);
    EXPECT_THROW(main_effects(ds, gen, Metric::snr_db), std::invalid_argument);
    EXPECT_THROW(effects_to_hints(gen, {}), std::invalid_argument);
}

}  // namespace
}  // namespace nautilus::ip
