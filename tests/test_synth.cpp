#include "synth/synthesizer.hpp"

#include <gtest/gtest.h>

namespace nautilus::synth {
namespace {

DesignDescriptor simple_design(double luts = 1000.0, double levels = 6.0)
{
    DesignDescriptor d;
    d.name = "test";
    d.config_key = 42;
    d.resources.luts = luts;
    d.resources.ffs = 500.0;
    d.paths = {{"main", levels, 4.0}};
    return d;
}

TEST(Resources, AdditionAccumulatesAllFields)
{
    Resources a;
    a.luts = 10;
    a.ffs = 20;
    a.lutram_bits = 30;
    a.bram_bits = 40;
    a.dsps = 2;
    Resources b = a;
    const Resources sum = a + b;
    EXPECT_DOUBLE_EQ(sum.luts, 20);
    EXPECT_DOUBLE_EQ(sum.ffs, 40);
    EXPECT_DOUBLE_EQ(sum.lutram_bits, 60);
    EXPECT_DOUBLE_EQ(sum.bram_bits, 80);
    EXPECT_DOUBLE_EQ(sum.dsps, 4);
}

TEST(Resources, ScaledMultipliesEverything)
{
    Resources a;
    a.luts = 10;
    a.dsps = 3;
    const Resources s = a.scaled(4.0);
    EXPECT_DOUBLE_EQ(s.luts, 40);
    EXPECT_DOUBLE_EQ(s.dsps, 12);
    EXPECT_THROW(a.scaled(-1.0), std::invalid_argument);
}

TEST(Resources, EquivalentLutsIncludesLutram)
{
    const FpgaTech tech = FpgaTech::virtex6_lx760t();
    Resources r;
    r.luts = 100;
    r.lutram_bits = tech.lutram_bits_per_lut * 10;
    EXPECT_DOUBLE_EQ(r.equivalent_luts(tech), 110.0);
}

TEST(Resources, BramBlocksRoundUp)
{
    const FpgaTech tech = FpgaTech::virtex6_lx760t();
    Resources r;
    r.bram_bits = tech.bram_kbits * 1024.0 + 1.0;
    EXPECT_DOUBLE_EQ(r.bram_blocks(tech), 2.0);
}

TEST(Timing, PathDelayGrowsWithDepth)
{
    const FpgaTech tech = FpgaTech::virtex6_lx760t();
    const TimingPath shallow{"s", 3.0, 4.0};
    const TimingPath deep{"d", 9.0, 4.0};
    EXPECT_LT(path_delay_ns(shallow, tech), path_delay_ns(deep, tech));
}

TEST(Timing, FanoutPenaltyIncreasesDelay)
{
    const FpgaTech tech = FpgaTech::virtex6_lx760t();
    const TimingPath narrow{"n", 5.0, 2.0};
    const TimingPath wide{"w", 5.0, 64.0};
    EXPECT_LT(path_delay_ns(narrow, tech), path_delay_ns(wide, tech));
}

TEST(Timing, CriticalPathIsWorstPath)
{
    const FpgaTech tech = FpgaTech::virtex6_lx760t();
    const std::vector<TimingPath> paths{{"a", 3.0, 4.0}, {"b", 8.0, 4.0}, {"c", 5.0, 4.0}};
    EXPECT_DOUBLE_EQ(critical_path_ns(paths, tech), path_delay_ns(paths[1], tech));
    EXPECT_THROW(critical_path_ns({}, tech), std::invalid_argument);
}

TEST(Timing, FmaxCappedByTechnology)
{
    const FpgaTech tech = FpgaTech::virtex6_lx760t();
    const std::vector<TimingPath> trivial{{"t", 0.0, 1.0}};
    EXPECT_DOUBLE_EQ(fmax_mhz(trivial, tech), tech.max_freq_mhz);
}

TEST(Timing, NegativeLevelsRejected)
{
    const FpgaTech tech = FpgaTech::virtex6_lx760t();
    EXPECT_THROW(path_delay_ns({"bad", -1.0, 4.0}, tech), std::invalid_argument);
}

TEST(NoiseFactor, DeterministicAndBounded)
{
    for (std::uint64_t key = 0; key < 200; ++key) {
        const double f = noise_factor(key, 7, 0.05);
        EXPECT_GE(f, 0.95);
        EXPECT_LE(f, 1.05);
        EXPECT_DOUBLE_EQ(f, noise_factor(key, 7, 0.05));
    }
}

TEST(NoiseFactor, SaltChangesResult)
{
    EXPECT_NE(noise_factor(1, 2, 0.05), noise_factor(1, 3, 0.05));
}

TEST(NoiseFactor, ZeroAmplitudeIsExact)
{
    EXPECT_DOUBLE_EQ(noise_factor(1, 2, 0.0), 1.0);
}

TEST(NoiseFactor, RejectsBadAmplitude)
{
    EXPECT_THROW(noise_factor(1, 2, -0.1), std::invalid_argument);
    EXPECT_THROW(noise_factor(1, 2, 1.0), std::invalid_argument);
}

TEST(VirtualSynthesizer, ResultsAreDeterministicPerDesign)
{
    const VirtualSynthesizer synth{FpgaTech::virtex6_lx760t()};
    const auto a = synth.synthesize(simple_design());
    const auto b = synth.synthesize(simple_design());
    EXPECT_DOUBLE_EQ(a.luts, b.luts);
    EXPECT_DOUBLE_EQ(a.fmax_mhz, b.fmax_mhz);
}

TEST(VirtualSynthesizer, DifferentKeysGetDifferentNoise)
{
    const VirtualSynthesizer synth{FpgaTech::virtex6_lx760t()};
    DesignDescriptor a = simple_design();
    DesignDescriptor b = simple_design();
    b.config_key = 43;
    EXPECT_NE(synth.synthesize(a).fmax_mhz, synth.synthesize(b).fmax_mhz);
}

TEST(VirtualSynthesizer, PeriodIsInverseOfFmax)
{
    const VirtualSynthesizer synth{FpgaTech::virtex6_lx760t()};
    const auto r = synth.synthesize(simple_design());
    EXPECT_NEAR(r.period_ns * r.fmax_mhz, 1000.0, 1e-6);
}

TEST(VirtualSynthesizer, MoreLutsMoreArea)
{
    const VirtualSynthesizer synth{FpgaTech::virtex6_lx760t(), 0.0, 0.0};
    const auto small = synth.synthesize(simple_design(500.0));
    const auto big = synth.synthesize(simple_design(5000.0));
    EXPECT_LT(small.luts, big.luts);
}

TEST(VirtualSynthesizer, DeeperLogicLowerFmax)
{
    const VirtualSynthesizer synth{FpgaTech::virtex6_lx760t(), 0.0, 0.0};
    const auto fast = synth.synthesize(simple_design(1000.0, 3.0));
    const auto slow = synth.synthesize(simple_design(1000.0, 12.0));
    EXPECT_GT(fast.fmax_mhz, slow.fmax_mhz);
}

TEST(VirtualSynthesizer, ValidatesDescriptor)
{
    const VirtualSynthesizer synth{FpgaTech::virtex6_lx760t()};
    DesignDescriptor no_paths = simple_design();
    no_paths.paths.clear();
    EXPECT_THROW(synth.synthesize(no_paths), std::invalid_argument);
    DesignDescriptor bad_toggle = simple_design();
    bad_toggle.toggle_rate = 2.0;
    EXPECT_THROW(synth.synthesize(bad_toggle), std::invalid_argument);
    DesignDescriptor negative = simple_design();
    negative.resources.luts = -1.0;
    EXPECT_THROW(synth.synthesize(negative), std::invalid_argument);
}

TEST(AsicSynthesizer, ProducesAreaAndPower)
{
    const AsicSynthesizer synth{AsicTech::commercial_65nm()};
    const auto r = synth.synthesize(simple_design(), 1000.0);
    EXPECT_GT(r.area_mm2, 0.0);
    EXPECT_GT(r.power_mw, 0.0);
    EXPECT_GT(r.fmax_mhz, 0.0);
}

TEST(AsicSynthesizer, WiringAddsAreaAndPower)
{
    const AsicSynthesizer synth{AsicTech::commercial_65nm(), 0.0, 0.0};
    const auto dry = synth.synthesize(simple_design(), 0.0);
    const auto wired = synth.synthesize(simple_design(), 50000.0);
    EXPECT_GT(wired.area_mm2, dry.area_mm2);
    EXPECT_GT(wired.power_mw, dry.power_mw);
}

TEST(AsicSynthesizer, HigherToggleRateMorePower)
{
    const AsicSynthesizer synth{AsicTech::commercial_65nm(), 0.0, 0.0};
    DesignDescriptor calm = simple_design();
    calm.toggle_rate = 0.05;
    DesignDescriptor busy = simple_design();
    busy.toggle_rate = 0.45;
    EXPECT_LT(synth.synthesize(calm).power_mw, synth.synthesize(busy).power_mw);
}

TEST(AsicSynthesizer, RejectsNegativeWireLength)
{
    const AsicSynthesizer synth{AsicTech::commercial_65nm()};
    EXPECT_THROW(synth.synthesize(simple_design(), -1.0), std::invalid_argument);
}

TEST(AsicSynthesizer, AsicFasterThanFpgaForSameDesign)
{
    const VirtualSynthesizer fpga{FpgaTech::virtex6_lx760t(), 0.0, 0.0};
    const AsicSynthesizer asic{AsicTech::commercial_65nm(), 0.0, 0.0};
    const auto d = simple_design();
    EXPECT_GT(asic.synthesize(d).fmax_mhz, fpga.synthesize(d).fmax_mhz);
}

}  // namespace
}  // namespace nautilus::synth
