// Exporter tests: Prometheus text exposition, histogram quantile
// estimation, and the Chrome trace-event (Perfetto) conversion.

#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

using namespace nautilus::obs;

namespace {

// ---- name sanitization ------------------------------------------------------

TEST(ObsPrometheus, SanitizeMetricNameMapsToPrometheusCharset)
{
    EXPECT_EQ(sanitize_metric_name("eval.items"), "eval_items");
    EXPECT_EQ(sanitize_metric_name("ga.runs"), "ga_runs");
    EXPECT_EQ(sanitize_metric_name("already_fine_09"), "already_fine_09");
    EXPECT_EQ(sanitize_metric_name("with:colon"), "with:colon");
    EXPECT_EQ(sanitize_metric_name("spaces and-dashes"), "spaces_and_dashes");
    EXPECT_EQ(sanitize_metric_name("9leading"), "_9leading");
    EXPECT_EQ(sanitize_metric_name(""), "_");
}

// ---- full exposition --------------------------------------------------------

TEST(ObsPrometheus, GoldenExposition)
{
    MetricsRegistry reg;
    reg.counter("eval.items").add(7);
    reg.gauge("workers").set(4.0);
    Histogram& h = reg.histogram("wave.seconds", {0.1, 1.0});
    h.observe(0.05);
    h.observe(0.5);
    h.observe(5.0);

    // Doubles render at %.17g round-trip precision (shared with the trace
    // and /status surfaces via obs/format.hpp), so decimals with no exact
    // binary form carry their full digits.
    const std::string text = to_prometheus(reg.snapshot());
    const std::string expected =
        "# TYPE nautilus_eval_items_total counter\n"
        "nautilus_eval_items_total 7\n"
        "# TYPE nautilus_workers gauge\n"
        "nautilus_workers 4\n"
        "# TYPE nautilus_wave_seconds histogram\n"
        "nautilus_wave_seconds_bucket{le=\"0.10000000000000001\"} 1\n"
        "nautilus_wave_seconds_bucket{le=\"1\"} 2\n"
        "nautilus_wave_seconds_bucket{le=\"+Inf\"} 3\n"
        "nautilus_wave_seconds_sum 5.5499999999999998\n"
        "nautilus_wave_seconds_count 3\n";
    EXPECT_EQ(text, expected);
}

TEST(ObsPrometheus, CounterTotalSuffixIsNotDuplicated)
{
    MetricsRegistry reg;
    reg.counter("requests_total").add(3);
    const std::string text = to_prometheus(reg.snapshot());
    EXPECT_NE(text.find("nautilus_requests_total 3\n"), std::string::npos);
    EXPECT_EQ(text.find("requests_total_total"), std::string::npos);
}

TEST(ObsPrometheus, HistogramBucketsAreCumulativeAndEndAtInf)
{
    MetricsRegistry reg;
    Histogram& h = reg.histogram("lat", {1.0, 2.0, 4.0});
    for (const double v : {0.5, 1.5, 1.6, 3.0, 100.0}) h.observe(v);

    const std::string text = to_prometheus(reg.snapshot());
    // Cumulative: 1, 3, 4, then +Inf carries the overflow observation too.
    EXPECT_NE(text.find("nautilus_lat_bucket{le=\"1\"} 1\n"), std::string::npos);
    EXPECT_NE(text.find("nautilus_lat_bucket{le=\"2\"} 3\n"), std::string::npos);
    EXPECT_NE(text.find("nautilus_lat_bucket{le=\"4\"} 4\n"), std::string::npos);
    EXPECT_NE(text.find("nautilus_lat_bucket{le=\"+Inf\"} 5\n"), std::string::npos);
    EXPECT_NE(text.find("nautilus_lat_count 5\n"), std::string::npos);
}

TEST(ObsPrometheus, CustomPrefix)
{
    MetricsRegistry reg;
    reg.counter("x").add();
    PrometheusOptions options;
    options.prefix = "acme_";
    const std::string text = to_prometheus(reg.snapshot(), options);
    EXPECT_NE(text.find("acme_x_total 1\n"), std::string::npos);
}

TEST(ObsPrometheus, ProgressExpositionCarriesRunState)
{
    ProgressSnapshot snap;
    snap.engine = "ga";
    snap.running = true;
    snap.runs_started = 1;
    snap.units_done = 12;
    snap.units_total = 80;
    snap.have_best = true;
    snap.best = 123.5;
    snap.distinct_evals = 340;
    snap.eval_calls = 800;
    snap.cache_hits = 460;

    std::string out;
    append_progress_exposition(out, snap);
    EXPECT_NE(out.find("# TYPE nautilus_progress_running gauge\n"), std::string::npos);
    EXPECT_NE(out.find("nautilus_progress_running 1\n"), std::string::npos);
    EXPECT_NE(out.find("nautilus_progress_generation 12\n"), std::string::npos);
    EXPECT_NE(out.find("nautilus_progress_generations_total 80\n"), std::string::npos);
    EXPECT_NE(out.find("nautilus_progress_best 123.5\n"), std::string::npos);
    EXPECT_NE(out.find("nautilus_progress_distinct_evals 340\n"), std::string::npos);
    EXPECT_NE(out.find("nautilus_progress_cache_hit_rate 0.57499999999999996\n"),
              std::string::npos);

    // Without a best value the series is absent rather than misleadingly 0.
    std::string no_best;
    snap.have_best = false;
    append_progress_exposition(no_best, snap);
    EXPECT_EQ(no_best.find("progress_best"), std::string::npos);
}

// ---- Histogram::quantile ----------------------------------------------------

TEST(ObsQuantile, InterpolatesWithinBuckets)
{
    Histogram h{{10.0, 20.0, 40.0}};
    h.observe(5.0);    // bucket le=10
    h.observe(15.0);   // bucket le=20
    h.observe(30.0);   // bucket le=40
    h.observe(100.0);  // overflow

    // rank q*4: the first bucket spans [0, 10].
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 10.0);  // exactly the first bound
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 20.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.125), 5.0);  // halfway into [0, 10]
}

TEST(ObsQuantile, OverflowRanksClampToHighestFiniteBound)
{
    Histogram h{{10.0, 20.0, 40.0}};
    h.observe(5.0);
    h.observe(100.0);
    h.observe(200.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 40.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.9), 40.0);
}

TEST(ObsQuantile, EmptyBucketsSkipToTheOccupiedRegion)
{
    Histogram h{{10.0, 20.0}};
    h.observe(15.0);
    h.observe(15.0);
    // q=0 lands on the empty first bucket's boundary.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(ObsQuantile, EmptyHistogramYieldsNaN)
{
    Histogram h{{1.0, 2.0}};
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(ObsQuantile, RejectsOutOfRangeQ)
{
    Histogram h{{1.0}};
    h.observe(0.5);
    EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
    EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
    EXPECT_THROW(h.quantile(std::nan("")), std::invalid_argument);
}

// ---- Chrome trace export ----------------------------------------------------

TEST(ObsChrome, SpansBecomeCompleteEventsWithDerivedStart)
{
    TraceEvent span{"span"};
    span.t = 0.002;  // span *end* in trace time
    span.add("name", "ga.run").add("seconds", FieldValue{0.001}).add("depth", 0);

    const std::string json = chrome_trace_json({span});
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.substr(json.size() - 2), "]\n");
    EXPECT_NE(json.find("\"name\":\"ga.run\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // end 2000us - dur 1000us => ts 1000us.
    EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":1000.000"), std::string::npos);
}

TEST(ObsChrome, TimestampsAreClampedAndSorted)
{
    // A span whose duration exceeds its end time would go negative; it must
    // clamp to ts=0.  A later instant must sort after it.
    TraceEvent early{"span"};
    early.t = 0.0005;
    early.add("name", "warmup").add("seconds", FieldValue{0.002});
    TraceEvent late{"run_end"};
    late.t = 0.004;
    late.add("engine", "ga");

    const std::string json = chrome_trace_json({late, early});
    const std::size_t warmup = json.find("warmup");
    const std::size_t run_end = json.find("run_end");
    ASSERT_NE(warmup, std::string::npos);
    ASSERT_NE(run_end, std::string::npos);
    EXPECT_LT(warmup, run_end);  // sorted by ts despite input order
    EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
    EXPECT_EQ(json.find("\"ts\":-"), std::string::npos);
}

TEST(ObsChrome, GenerationsBecomeCounterTracks)
{
    TraceEvent gen{"generation"};
    gen.t = 0.01;
    gen.add("gen", std::size_t{3})
        .add("best_so_far", FieldValue{42.5})
        .add("diversity", FieldValue{0.8})
        .add("distinct_total", std::size_t{120});

    const std::string json = chrome_trace_json({gen});
    EXPECT_NE(json.find("\"name\":\"best_so_far\",\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"diversity\",\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"distinct_evals\",\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":42.5"), std::string::npos);
    // The generation itself is still visible as an instant.
    EXPECT_NE(json.find("\"name\":\"generation\",\"ph\":\"i\""), std::string::npos);
}

TEST(ObsChrome, EvalWavesLandOnTheirOwnLane)
{
    TraceEvent wave{"eval_wave"};
    wave.t = 0.02;
    wave.add("size", std::size_t{10})
        .add("fresh", std::size_t{7})
        .add("seconds", FieldValue{0.004});

    const std::string json = chrome_trace_json({wave});
    EXPECT_NE(json.find("\"name\":\"eval_wave\""), std::string::npos);
    EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
    EXPECT_NE(json.find("\"fresh\":7"), std::string::npos);
}

TEST(ObsChrome, StringArgsAreEscaped)
{
    TraceEvent ev{"checkpoint"};
    ev.t = 0.0;
    ev.add("path", "dir\\file \"x\".ckpt");
    const std::string json = chrome_trace_json({ev});
    EXPECT_NE(json.find("dir\\\\file \\\"x\\\".ckpt"), std::string::npos);
}

TEST(ObsChrome, EmptyTraceIsAnEmptyArray)
{
    EXPECT_EQ(chrome_trace_json({}), "[]\n");
}

}  // namespace
