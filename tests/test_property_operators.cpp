#include "core/operators.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "core/genome.hpp"
#include "core/parameter.hpp"
#include "core/rng.hpp"

// Property-based tests for the genetic operators: each test drives an
// operator through >= 1000 randomized cases and asserts invariants that must
// hold for *every* case, not just hand-picked examples.

namespace nautilus {
namespace {

constexpr int k_cases = 1000;

// A deliberately mixed space: different cardinalities, a pow2 domain, an
// ordered categorical, an unordered categorical and a boolean.
ParameterSpace mixed_space()
{
    ParameterSpace space;
    space.add("depth", ParamDomain::int_range(0, 11));
    space.add("width", ParamDomain::pow2(2, 7));
    space.add("impl", ParamDomain::categorical({"lut", "dsp", "hybrid"}, true));
    space.add("vendor", ParamDomain::categorical({"a", "b", "c", "d"}, false));
    space.add("pipeline", ParamDomain::boolean());
    return space;
}

Genome random_genome(const ParameterSpace& space, Rng& rng)
{
    return Genome::random(space, rng);
}

void expect_in_domain(const Genome& g, const ParameterSpace& space)
{
    ASSERT_EQ(g.size(), space.size());
    for (std::size_t i = 0; i < g.size(); ++i)
        ASSERT_LT(g.gene(i), space[i].domain.cardinality())
            << "gene " << i << " out of domain";
}

TEST(PropertyCrossover, ChildrenOnlyEverContainParentGenes)
{
    const auto space = mixed_space();
    Rng rng{0x5eed1};
    for (const CrossoverKind kind :
         {CrossoverKind::single_point, CrossoverKind::two_point, CrossoverKind::uniform}) {
        for (int c = 0; c < k_cases; ++c) {
            const Genome a = random_genome(space, rng);
            const Genome b = random_genome(space, rng);
            const auto [c1, c2] = crossover(a, b, kind, rng);
            ASSERT_EQ(c1.size(), a.size());
            ASSERT_EQ(c2.size(), a.size());
            for (std::size_t i = 0; i < a.size(); ++i) {
                // Gene-wise, each child takes its value from one parent and
                // the two children take complementary values.
                const bool c1_from_a = c1.gene(i) == a.gene(i);
                const bool c1_from_b = c1.gene(i) == b.gene(i);
                ASSERT_TRUE(c1_from_a || c1_from_b);
                if (c1_from_a && !c1_from_b) ASSERT_EQ(c2.gene(i), b.gene(i));
                if (c1_from_b && !c1_from_a) ASSERT_EQ(c2.gene(i), a.gene(i));
            }
            expect_in_domain(c1, space);
            expect_in_domain(c2, space);
        }
    }
}

// With parent A all-zeros and parent B all-ones, the first index where a
// child switches parents reveals the cut, so we can assert reachability of
// every cut position.
TEST(PropertySinglePointCrossover, EveryCutPositionIsReachable)
{
    ParameterSpace space;
    constexpr std::size_t n = 6;
    for (std::size_t i = 0; i < n; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 1));
    const Genome a{std::vector<std::uint32_t>(n, 0)};
    const Genome b{std::vector<std::uint32_t>(n, 1)};
    Rng rng{0x5eed2};
    std::set<std::size_t> cuts;
    for (int c = 0; c < k_cases; ++c) {
        const auto [c1, c2] = crossover(a, b, CrossoverKind::single_point, rng);
        std::size_t cut = n;
        for (std::size_t i = 0; i < n; ++i)
            if (c1.gene(i) != c1.gene(0)) {
                cut = i;
                break;
            }
        ASSERT_NE(cut, n) << "single-point must exchange a proper prefix";
        // Everything after the cut stays swapped (contiguity).
        for (std::size_t i = cut; i < n; ++i) ASSERT_NE(c1.gene(i), c1.gene(0));
        cuts.insert(cut);
    }
    // All interior cuts [1, n-1] occur across 1000 draws.
    for (std::size_t cut = 1; cut < n; ++cut)
        EXPECT_TRUE(cuts.count(cut)) << "cut " << cut << " never drawn";
}

TEST(PropertyTwoPointCrossover, SwapsAreContiguousAndReachTheLastGene)
{
    ParameterSpace space;
    constexpr std::size_t n = 6;
    for (std::size_t i = 0; i < n; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 1));
    const Genome a{std::vector<std::uint32_t>(n, 0)};
    const Genome b{std::vector<std::uint32_t>(n, 1)};
    Rng rng{0x5eed3};
    std::set<std::pair<std::size_t, std::size_t>> windows;
    bool last_gene_swapped = false;
    for (int c = 0; c < k_cases; ++c) {
        const auto [c1, c2] = crossover(a, b, CrossoverKind::two_point, rng);
        // The genes c1 took from b form one contiguous window [p, q).
        std::size_t p = n;
        std::size_t q = 0;
        for (std::size_t i = 0; i < n; ++i)
            if (c1.gene(i) == 1) {
                if (p == n) p = i;
                q = i + 1;
            }
        if (p == n) continue;  // empty swap window (p == q draw)
        for (std::size_t i = p; i < q; ++i)
            ASSERT_EQ(c1.gene(i), 1u) << "swap window must be contiguous";
        windows.insert({p, q});
        if (q == n) last_gene_swapped = true;
    }
    // Regression for the historical off-by-one: the window must be able to
    // include the final gene.
    EXPECT_TRUE(last_gene_swapped) << "two-point crossover never exchanged the last gene";
    // And interior windows of every start position appear too.
    std::set<std::size_t> starts;
    for (const auto& [p, q] : windows) starts.insert(p);
    for (std::size_t p = 1; p + 1 < n; ++p)
        EXPECT_TRUE(starts.count(p)) << "window starting at " << p << " never drawn";
}

TEST(PropertyMutation, MutatedGenomesAlwaysStayInDomain)
{
    const auto space = mixed_space();
    const HintSet none = HintSet::none(space);
    Rng rng{0x5eed4};
    MutationContext ctx;
    ctx.space = &space;
    ctx.hints = &none;
    ctx.mutation_rate = 0.5;  // high rate: exercise many gene draws
    for (int c = 0; c < k_cases; ++c) {
        Genome g = random_genome(space, rng);
        const Genome before = g;
        const std::size_t changed = mutate(g, ctx, rng);
        expect_in_domain(g, space);
        // `changed` counts exactly the differing genes, and every mutated
        // gene really changed value.
        std::size_t differing = 0;
        for (std::size_t i = 0; i < g.size(); ++i)
            if (g.gene(i) != before.gene(i)) ++differing;
        ASSERT_EQ(changed, differing);
    }
}

TEST(PropertyMutation, HintedMutationRespectsDomainsUnderRandomHints)
{
    const auto space = mixed_space();
    Rng rng{0x5eed5};
    for (int c = 0; c < k_cases; ++c) {
        // Random valid hint set: per-parameter importance, and bias *or*
        // target (never both) on ordered domains only.
        std::vector<ParamHints> params(space.size());
        for (std::size_t i = 0; i < space.size(); ++i) {
            params[i].importance = 1.0 + 99.0 * rng.uniform();
            params[i].importance_decay = 0.8 + 0.2 * rng.uniform();
            if (space[i].domain.ordered()) {
                const double which = rng.uniform();
                if (which < 0.4) params[i].bias = 2.0 * rng.uniform() - 1.0;
                else if (which < 0.8)
                    params[i].target = space[i].domain.numeric_value(
                        rng.index(space[i].domain.cardinality()));
                if (rng.uniform() < 0.5) params[i].step_scale = rng.uniform();
            }
        }
        HintSet hints{params, rng.uniform()};
        ASSERT_NO_THROW(hints.validate(space));

        MutationContext ctx;
        ctx.space = &space;
        ctx.hints = &hints;
        ctx.mutation_rate = 0.5;
        ctx.generation = static_cast<std::size_t>(c % 40);
        Genome g = random_genome(space, rng);
        mutate(g, ctx, rng);
        expect_in_domain(g, space);
    }
}

TEST(PropertyMutation, ValueDistributionIsAProbabilityExcludingCurrent)
{
    const auto space = mixed_space();
    Rng rng{0x5eed6};
    for (int c = 0; c < k_cases; ++c) {
        const auto& domain = space[rng.index(space.size())].domain;
        ParamHints hints;
        if (domain.ordered()) {
            if (rng.uniform() < 0.5) hints.bias = 2.0 * rng.uniform() - 1.0;
            else hints.target = domain.numeric_value(rng.index(domain.cardinality()));
            if (rng.uniform() < 0.5) hints.step_scale = rng.uniform();
        }
        const double confidence = rng.uniform();
        const auto current = static_cast<std::uint32_t>(rng.index(domain.cardinality()));
        const std::vector<double> dist =
            value_distribution(domain, hints, confidence, current);
        ASSERT_EQ(dist.size(), domain.cardinality());
        ASSERT_EQ(dist[current], 0.0) << "mutation must change the gene";
        double sum = 0.0;
        for (const double p : dist) {
            ASSERT_GE(p, 0.0);
            sum += p;
        }
        if (domain.cardinality() > 1) ASSERT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(PropertyHints, BiasAndTargetAreMutuallyExclusive)
{
    const auto space = mixed_space();
    std::vector<ParamHints> params(space.size());
    params[0].bias = 0.5;
    params[0].target = 4.0;  // both set on an ordered domain: invalid
    const HintSet both{params, 0.5};
    EXPECT_THROW(both.validate(space), std::invalid_argument);

    // Bias on the *unordered* categorical ("vendor", index 3) is invalid too.
    std::vector<ParamHints> unordered(space.size());
    unordered[3].bias = 0.5;
    EXPECT_THROW((HintSet{unordered, 0.5}.validate(space)), std::invalid_argument);
    std::vector<ParamHints> unordered_target(space.size());
    unordered_target[3].target = 1.0;
    EXPECT_THROW((HintSet{unordered_target, 0.5}.validate(space)), std::invalid_argument);

    // Either one alone on an ordered domain is fine.
    std::vector<ParamHints> ok(space.size());
    ok[0].bias = 0.5;
    ok[2].target = 1.0;
    EXPECT_NO_THROW((HintSet{ok, 0.5}.validate(space)));
}

TEST(PropertyRepair, RepairedGenomesAreAlwaysCompatibleAndIdempotent)
{
    const auto space = mixed_space();
    Rng rng{0x5eed7};
    for (int c = 0; c < k_cases; ++c) {
        // Build a deliberately broken genome: random length in [0, 2n],
        // random gene values up to 4x the largest cardinality.
        const std::size_t len = rng.index(2 * space.size() + 1);
        std::vector<std::uint32_t> genes(len);
        for (auto& g : genes) g = static_cast<std::uint32_t>(rng.index(48));
        Genome broken{genes};

        const std::size_t changed = repair(broken, space);
        expect_in_domain(broken, space);
        EXPECT_TRUE(broken.compatible_with(space));

        // Idempotence: a repaired genome needs no further repair.
        Genome again = broken;
        EXPECT_EQ(repair(again, space), 0u);
        EXPECT_EQ(again.genes(), broken.genes());

        // Repair counts only actual changes: an already-valid genome
        // reports zero.
        if (changed == 0) EXPECT_EQ(Genome{genes}.genes(), broken.genes());
    }
}

}  // namespace
}  // namespace nautilus
