#include "ip/dataset.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

namespace nautilus::ip {
namespace {

// 40-point space with deterministic metrics and a small infeasible region.
class GridGenerator final : public IpGenerator {
public:
    GridGenerator()
    {
        space_.add("x", ParamDomain::int_range(0, 9));
        space_.add("y", ParamDomain::int_range(0, 3));
    }

    std::string name() const override { return "grid"; }
    const ParameterSpace& space() const override { return space_; }
    std::vector<Metric> metrics() const override
    {
        return {Metric::area_luts, Metric::freq_mhz};
    }
    MetricValues evaluate(const Genome& g) const override
    {
        if (g.gene(0) == 0 && g.gene(1) == 0) return MetricValues::infeasible_point();
        MetricValues mv;
        mv.set(Metric::area_luts, 10.0 * g.gene(0) + g.gene(1));
        mv.set(Metric::freq_mhz, 100.0 + g.gene(0) - g.gene(1));
        return mv;
    }

private:
    ParameterSpace space_;
};

TEST(Dataset, EnumerateCoversFullSpace)
{
    const GridGenerator gen;
    const Dataset ds = Dataset::enumerate(gen);
    EXPECT_EQ(ds.size(), 40u);
    EXPECT_EQ(ds.feasible_count(), 39u);
}

TEST(Dataset, EnumerateRefusesHugeSpaces)
{
    const GridGenerator gen;
    EXPECT_THROW(Dataset::enumerate(gen, 10), std::invalid_argument);
}

TEST(Dataset, SampleDrawsDistinctPoints)
{
    const GridGenerator gen;
    const Dataset ds = Dataset::sample(gen, 20, 1);
    EXPECT_EQ(ds.size(), 20u);
    std::set<std::uint64_t> keys;
    for (const auto& e : ds) keys.insert(e.genome.key());
    EXPECT_EQ(keys.size(), 20u);
}

TEST(Dataset, SampleRejectsOversizedRequest)
{
    const GridGenerator gen;
    EXPECT_THROW(Dataset::sample(gen, 41, 1), std::invalid_argument);
}

TEST(Dataset, BestFindsExtremes)
{
    const GridGenerator gen;
    const Dataset ds = Dataset::enumerate(gen);
    EXPECT_DOUBLE_EQ(ds.best(Metric::area_luts, Direction::minimize), 1.0);   // x=0,y=1
    EXPECT_DOUBLE_EQ(ds.best(Metric::area_luts, Direction::maximize), 93.0);  // x=9,y=3
    EXPECT_DOUBLE_EQ(ds.best(Metric::freq_mhz, Direction::maximize), 109.0);
}

TEST(Dataset, BestEntryMatchesBestValue)
{
    const GridGenerator gen;
    const Dataset ds = Dataset::enumerate(gen);
    const DatasetEntry& e = ds.best_entry(Metric::freq_mhz, Direction::maximize);
    EXPECT_DOUBLE_EQ(e.values.get(Metric::freq_mhz), 109.0);
    EXPECT_EQ(e.genome.gene(0), 9u);
    EXPECT_EQ(e.genome.gene(1), 0u);
}

TEST(Dataset, PercentileThreshold)
{
    const GridGenerator gen;
    const Dataset ds = Dataset::enumerate(gen);
    // Top ~2.5% of the 39 feasible points by minimal area = the single best.
    const double top = ds.percentile_threshold(Metric::area_luts, Direction::minimize, 0.02);
    EXPECT_DOUBLE_EQ(top, 1.0);
    // Top 100% = the worst value.
    EXPECT_DOUBLE_EQ(ds.percentile_threshold(Metric::area_luts, Direction::minimize, 1.0),
                     93.0);
    EXPECT_THROW(ds.percentile_threshold(Metric::area_luts, Direction::minimize, 0.0),
                 std::invalid_argument);
}

TEST(Dataset, QualityPercentBounds)
{
    const GridGenerator gen;
    const Dataset ds = Dataset::enumerate(gen);
    EXPECT_DOUBLE_EQ(ds.quality_percent(Metric::area_luts, Direction::minimize, 1.0), 100.0);
    EXPECT_NEAR(ds.quality_percent(Metric::area_luts, Direction::minimize, 0.5), 100.0,
                1e-9);
    EXPECT_DOUBLE_EQ(ds.quality_percent(Metric::area_luts, Direction::minimize, 1000.0),
                     0.0);
}

TEST(Dataset, QualityPercentIsMonotone)
{
    const GridGenerator gen;
    const Dataset ds = Dataset::enumerate(gen);
    double prev = 101.0;
    for (double v : {1.0, 11.0, 51.0, 93.0}) {
        const double q = ds.quality_percent(Metric::area_luts, Direction::minimize, v);
        EXPECT_LT(q, prev);
        prev = q;
    }
}

TEST(Dataset, HitFraction)
{
    const GridGenerator gen;
    const Dataset ds = Dataset::enumerate(gen);
    // Exactly one feasible point has area <= 1.
    EXPECT_NEAR(ds.hit_fraction(Metric::area_luts, Direction::minimize, 1.0), 1.0 / 39.0,
                1e-12);
    // Everything qualifies at the loosest threshold.
    EXPECT_DOUBLE_EQ(ds.hit_fraction(Metric::area_luts, Direction::minimize, 93.0), 1.0);
}

TEST(Dataset, LookupEvalServesStoredValues)
{
    const GridGenerator gen;
    const Dataset ds = Dataset::enumerate(gen);
    const EvalFn eval = ds.lookup_eval(Metric::area_luts);
    const Evaluation e = eval(Genome{{3, 2}});
    EXPECT_TRUE(e.feasible);
    EXPECT_DOUBLE_EQ(e.value, 32.0);
    EXPECT_FALSE(eval(Genome{{0, 0}}).feasible);  // stored infeasible point
}

TEST(Dataset, LookupEvalFallsBackForMissingGenomes)
{
    const GridGenerator gen;
    const Dataset partial = Dataset::sample(gen, 5, 2);
    int fallback_calls = 0;
    const EvalFn fallback = [&](const Genome&) {
        ++fallback_calls;
        return Evaluation{true, -1.0};
    };
    const EvalFn eval = partial.lookup_eval(Metric::area_luts, fallback);
    // Query every point; 35 of 40 must hit the fallback.
    for (std::size_t rank = 0; rank < 40; ++rank)
        eval(Genome::from_rank(gen.space(), rank));
    EXPECT_EQ(fallback_calls, 35);
}

TEST(Dataset, LookupEvalWithoutFallbackReportsInfeasible)
{
    const GridGenerator gen;
    const Dataset partial = Dataset::sample(gen, 5, 3);
    const EvalFn eval = partial.lookup_eval(Metric::area_luts);
    int infeasible = 0;
    for (std::size_t rank = 0; rank < 40; ++rank)
        if (!eval(Genome::from_rank(gen.space(), rank)).feasible) ++infeasible;
    EXPECT_GE(infeasible, 35);
}

TEST(Dataset, CsvRoundTrip)
{
    const GridGenerator gen;
    const Dataset ds = Dataset::enumerate(gen);
    std::stringstream buffer;
    ds.save_csv(buffer, gen);
    const Dataset loaded = Dataset::load_csv(buffer, gen);
    ASSERT_EQ(loaded.size(), ds.size());
    for (std::size_t i = 0; i < ds.size(); ++i) {
        EXPECT_EQ(loaded.entry(i).genome, ds.entry(i).genome);
        EXPECT_EQ(loaded.entry(i).values.feasible, ds.entry(i).values.feasible);
        if (ds.entry(i).values.feasible) {
            EXPECT_DOUBLE_EQ(loaded.entry(i).values.get(Metric::area_luts),
                             ds.entry(i).values.get(Metric::area_luts));
        }
    }
}

TEST(Dataset, LoadCsvRejectsGarbage)
{
    const GridGenerator gen;
    std::stringstream empty;
    EXPECT_THROW(Dataset::load_csv(empty, gen), std::runtime_error);
    std::stringstream truncated{"x;y;feasible;area_luts;freq_mhz\n3\n"};
    EXPECT_THROW(Dataset::load_csv(truncated, gen), std::runtime_error);
}

TEST(Dataset, EntryOutOfRangeThrows)
{
    const GridGenerator gen;
    const Dataset ds = Dataset::enumerate(gen);
    EXPECT_THROW(ds.entry(40), std::out_of_range);
}

TEST(Dataset, MetricWithNoFeasibleValuesThrows)
{
    const GridGenerator gen;
    const Dataset ds = Dataset::enumerate(gen);
    EXPECT_THROW(ds.best(Metric::snr_db, Direction::maximize), std::invalid_argument);
}

}  // namespace
}  // namespace nautilus::ip
