#include "noc/network_generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace nautilus::noc {
namespace {

using ip::Metric;

TEST(Topology, NamesAreStable)
{
    EXPECT_STREQ(topology_name(TopologyKind::ring), "ring");
    EXPECT_STREQ(topology_name(TopologyKind::fat_tree), "fat_tree");
    EXPECT_STREQ(topology_name(TopologyKind::conc_double_ring), "conc_double_ring");
}

TEST(Topology, AllFamiliesBuildAt64Endpoints)
{
    const auto all = all_topologies(64);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(k_topology_count));
    for (const auto& t : all) {
        EXPECT_EQ(t.endpoints, 64);
        EXPECT_GT(t.num_routers, 0);
        EXPECT_GE(t.router_radix, 3);
        EXPECT_GT(t.total_channels, 0);
        EXPECT_GT(t.bisection_channels, 0);
        EXPECT_LE(t.bisection_channels, t.total_channels);
        EXPECT_GT(t.avg_channel_mm, 0.0);
    }
}

TEST(Topology, ConcentrationReducesRouterCount)
{
    const auto ring = make_topology(TopologyKind::ring, 64);
    const auto conc = make_topology(TopologyKind::conc_ring, 64);
    EXPECT_EQ(ring.num_routers, 64);
    EXPECT_EQ(conc.num_routers, 16);
    EXPECT_GT(conc.router_radix, ring.router_radix);
}

TEST(Topology, TorusDoublesMeshBisection)
{
    const auto mesh = make_topology(TopologyKind::mesh, 64);
    const auto torus = make_topology(TopologyKind::torus, 64);
    EXPECT_EQ(torus.bisection_channels, 2 * mesh.bisection_channels);
    EXPECT_GT(torus.total_channels, mesh.total_channels);
}

TEST(Topology, FatTreeHasFullBisection)
{
    const auto ft = make_topology(TopologyKind::fat_tree, 64);
    EXPECT_EQ(ft.bisection_channels, 128);  // 64 endpoints, both directions
    EXPECT_EQ(ft.num_routers, 48);          // 3 levels x 16 switches
    EXPECT_EQ(ft.router_radix, 8);
}

TEST(Topology, BisectionOrderingAcrossFamilies)
{
    // Rings < mesh < torus < fat tree at 64 endpoints.
    const int ring = make_topology(TopologyKind::ring, 64).bisection_channels;
    const int mesh = make_topology(TopologyKind::mesh, 64).bisection_channels;
    const int torus = make_topology(TopologyKind::torus, 64).bisection_channels;
    const int ft = make_topology(TopologyKind::fat_tree, 64).bisection_channels;
    EXPECT_LT(ring, mesh);
    EXPECT_LT(mesh, torus);
    EXPECT_LT(torus, ft);
}

TEST(Topology, InvalidEndpointCountsRejected)
{
    EXPECT_THROW(make_topology(TopologyKind::mesh, 60), std::invalid_argument);
    EXPECT_THROW(make_topology(TopologyKind::torus, 48), std::invalid_argument);
    EXPECT_THROW(make_topology(TopologyKind::fat_tree, 32), std::invalid_argument);
    EXPECT_THROW(make_topology(TopologyKind::butterfly, 8), std::invalid_argument);
    EXPECT_THROW(make_topology(TopologyKind::conc_ring, 6), std::invalid_argument);
    EXPECT_THROW(make_topology(TopologyKind::ring, 2), std::invalid_argument);
}

TEST(Topology, ScalesWithEndpointCount)
{
    const auto small = make_topology(TopologyKind::mesh, 16);
    const auto big = make_topology(TopologyKind::mesh, 256);
    EXPECT_LT(small.num_routers, big.num_routers);
    EXPECT_LT(small.bisection_channels, big.bisection_channels);
}

TEST(NetworkModel, EvaluatesAllFamilies)
{
    const NetworkModel model;
    for (const auto& topo : all_topologies(64)) {
        NetworkConfig c;
        c.topology = topo;
        const NetworkResult r = model.evaluate(c);
        EXPECT_GT(r.area_mm2, 0.0) << topology_name(topo.kind);
        EXPECT_GT(r.power_mw, 0.0);
        EXPECT_GT(r.fmax_mhz, 0.0);
        EXPECT_GT(r.bisection_gbps, 0.0);
    }
}

TEST(NetworkModel, WiderFlitsMoreBandwidthAndArea)
{
    const NetworkModel model;
    NetworkConfig narrow;
    narrow.topology = make_topology(TopologyKind::mesh, 64);
    narrow.router.flit_width = 32;
    NetworkConfig wide = narrow;
    wide.router.flit_width = 512;
    const auto rn = model.evaluate(narrow);
    const auto rw = model.evaluate(wide);
    EXPECT_GT(rw.bisection_gbps, rn.bisection_gbps);
    EXPECT_GT(rw.area_mm2, rn.area_mm2);
    EXPECT_GT(rw.power_mw, rn.power_mw);
}

TEST(NetworkModel, FatTreeOutperformsRingInBandwidth)
{
    const NetworkModel model;
    NetworkConfig ring;
    ring.topology = make_topology(TopologyKind::ring, 64);
    NetworkConfig ft = ring;
    ft.topology = make_topology(TopologyKind::fat_tree, 64);
    EXPECT_GT(model.evaluate(ft).bisection_gbps, model.evaluate(ring).bisection_gbps);
    EXPECT_GT(model.evaluate(ft).area_mm2, model.evaluate(ring).area_mm2);
}

TEST(NetworkGenerator, SpaceShape)
{
    const NetworkGenerator gen;
    EXPECT_EQ(gen.space().size(), network_gene::count);
    EXPECT_EQ(gen.space().exact_cardinality(), 8u * 5u * 3u * 4u * 3u);
    EXPECT_FALSE(gen.space()[network_gene::topology].domain.ordered());
}

TEST(NetworkGenerator, EvaluateProducesAllMetrics)
{
    const NetworkGenerator gen;
    Rng rng{8};
    const Genome g = Genome::random(gen.space(), rng);
    const auto mv = gen.evaluate(g);
    ASSERT_TRUE(mv.feasible);
    for (Metric m : gen.metrics()) EXPECT_TRUE(mv.has(m)) << ip::metric_name(m);
}

TEST(NetworkGenerator, SpansOrdersOfMagnitude)
{
    // The Fig. 2 motivation: interchangeable networks spanning 2-3 orders of
    // magnitude in area, power and performance.
    const NetworkGenerator gen;
    double bw_min = 1e300;
    double bw_max = 0.0;
    double area_min = 1e300;
    double area_max = 0.0;
    const std::size_t total = *gen.space().exact_cardinality();
    for (std::size_t rank = 0; rank < total; rank += 7) {
        const auto mv = gen.evaluate(Genome::from_rank(gen.space(), rank));
        bw_min = std::min(bw_min, mv.get(Metric::bisection_gbps));
        bw_max = std::max(bw_max, mv.get(Metric::bisection_gbps));
        area_min = std::min(area_min, mv.get(Metric::area_mm2));
        area_max = std::max(area_max, mv.get(Metric::area_mm2));
    }
    EXPECT_GT(bw_max / bw_min, 100.0);
    EXPECT_GT(area_max / area_min, 50.0);
}

TEST(NetworkGenerator, DecodeSetsTopologyRadix)
{
    const NetworkGenerator gen;
    Genome g = Genome::zeros(gen.space());
    g.set_gene(network_gene::topology,
               static_cast<std::uint32_t>(TopologyKind::fat_tree));
    const NetworkConfig c = gen.decode(g);
    EXPECT_EQ(c.topology.kind, TopologyKind::fat_tree);
    EXPECT_EQ(c.topology.router_radix, 8);
}

TEST(NetworkGenerator, HintsValidate)
{
    const NetworkGenerator gen;
    for (Metric m : gen.metrics())
        EXPECT_NO_THROW(gen.author_hints(m).validate(gen.space()));
    // Topology is unordered: importance allowed, bias must be absent.
    const HintSet h = gen.author_hints(Metric::bisection_gbps);
    EXPECT_FALSE(h.param(network_gene::topology).bias.has_value());
    EXPECT_GT(h.param(network_gene::topology).importance, 1.0);
}

}  // namespace
}  // namespace nautilus::noc
