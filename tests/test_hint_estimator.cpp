#include "core/hint_estimator.hpp"

#include <gtest/gtest.h>

namespace nautilus {
namespace {

ParameterSpace est_space()
{
    ParameterSpace space;
    space.add("big", ParamDomain::int_range(0, 9));     // strong positive effect
    space.add("small", ParamDomain::int_range(0, 9));   // weak negative effect
    space.add("noise", ParamDomain::int_range(0, 9));   // no effect
    space.add("mode", ParamDomain::categorical({"a", "b", "c"}));  // unordered, strong
    return space;
}

// Deterministic synthetic metric with known structure.
Evaluation synthetic_eval(const Genome& g)
{
    const double big = g.gene(0);
    const double small = g.gene(1);
    const double mode_effect = g.gene(3) == 1 ? 40.0 : 0.0;
    return {true, 10.0 * big - 2.0 * small + mode_effect};
}

TEST(HintEstimatorConfig, Validation)
{
    HintEstimatorConfig cfg;
    cfg.samples = 4;
    EXPECT_THROW(HintEstimator{cfg}, std::invalid_argument);
    cfg = HintEstimatorConfig{};
    cfg.correlation_floor = 1.0;
    EXPECT_THROW(HintEstimator{cfg}, std::invalid_argument);
}

TEST(RankCorrelation, KnownValues)
{
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> inc{2, 4, 6, 8, 10};
    const std::vector<double> dec{5, 4, 3, 2, 1};
    EXPECT_NEAR(HintEstimator::rank_correlation(x, inc), 1.0, 1e-12);
    EXPECT_NEAR(HintEstimator::rank_correlation(x, dec), -1.0, 1e-12);
}

TEST(RankCorrelation, MonotoneNonlinearIsStillOne)
{
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> y{1, 8, 27, 64, 125};
    EXPECT_NEAR(HintEstimator::rank_correlation(x, y), 1.0, 1e-12);
}

TEST(RankCorrelation, ConstantSeriesIsZero)
{
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> y{7, 7, 7, 7};
    EXPECT_DOUBLE_EQ(HintEstimator::rank_correlation(x, y), 0.0);
}

TEST(RankCorrelation, HandlesTies)
{
    const std::vector<double> x{1, 1, 2, 2, 3, 3};
    const std::vector<double> y{1, 2, 3, 4, 5, 6};
    const double r = HintEstimator::rank_correlation(x, y);
    EXPECT_GT(r, 0.8);
    EXPECT_LE(r, 1.0);
}

TEST(RankCorrelation, LengthMismatchThrows)
{
    EXPECT_THROW(HintEstimator::rank_correlation({1, 2}, {1}), std::invalid_argument);
}

TEST(HintEstimator, RecoverBiasSigns)
{
    const auto space = est_space();
    HintEstimatorConfig cfg;
    cfg.samples = 200;  // generous sample for a clean signal
    const HintSet hints = HintEstimator{cfg}.estimate(space, synthetic_eval);
    ASSERT_TRUE(hints.param(0).bias.has_value());
    EXPECT_GT(*hints.param(0).bias, 0.5);
    ASSERT_TRUE(hints.param(1).bias.has_value());
    EXPECT_LT(*hints.param(1).bias, 0.0);
}

TEST(HintEstimator, ImportanceOrderingMatchesEffectSizes)
{
    // Enough samples that the weak-but-real "small" effect stands clear of
    // the spurious-correlation noise floor.
    const auto space = est_space();
    HintEstimatorConfig cfg;
    cfg.samples = 2000;
    const HintSet hints = HintEstimator{cfg}.estimate(space, synthetic_eval);
    EXPECT_GT(hints.param(0).importance, hints.param(1).importance);
    EXPECT_GT(hints.param(1).importance, hints.param(2).importance);
    EXPECT_DOUBLE_EQ(hints.param(2).importance, 1.0);
}

TEST(HintEstimator, NoiseParameterGetsNoBias)
{
    const auto space = est_space();
    HintEstimatorConfig cfg;
    cfg.samples = 400;
    cfg.correlation_floor = 0.1;  // explicit 2-sigma rejection for this check
    const HintSet hints = HintEstimator{cfg}.estimate(space, synthetic_eval);
    EXPECT_DOUBLE_EQ(hints.param(2).importance, 1.0);
    EXPECT_FALSE(hints.param(2).bias.has_value());
}

TEST(HintEstimator, UnorderedCategoricalGetsImportanceNotBias)
{
    const auto space = est_space();
    HintEstimatorConfig cfg;
    cfg.samples = 300;
    const HintSet hints = HintEstimator{cfg}.estimate(space, synthetic_eval);
    EXPECT_GT(hints.param(3).importance, 10.0);
    EXPECT_FALSE(hints.param(3).bias.has_value());
}

TEST(HintEstimator, OutputValidatesAndHasZeroConfidence)
{
    const auto space = est_space();
    const HintSet hints = HintEstimator{}.estimate(space, synthetic_eval);
    EXPECT_NO_THROW(hints.validate(space));
    EXPECT_DOUBLE_EQ(hints.confidence(), 0.0);
}

TEST(HintEstimator, DeterministicPerSeed)
{
    const auto space = est_space();
    HintEstimatorConfig cfg;
    cfg.seed = 5;
    const HintSet a = HintEstimator{cfg}.estimate(space, synthetic_eval);
    const HintSet b = HintEstimator{cfg}.estimate(space, synthetic_eval);
    for (std::size_t i = 0; i < space.size(); ++i)
        EXPECT_DOUBLE_EQ(a.param(i).importance, b.param(i).importance);
}

TEST(HintEstimator, SkipsInfeasibleSamples)
{
    const auto space = est_space();
    const EvalFn eval = [](const Genome& g) -> Evaluation {
        if (g.gene(0) % 2 == 0) return {false, 0.0};  // half the space infeasible
        return synthetic_eval(g);
    };
    const HintSet hints = HintEstimator{}.estimate(space, eval);
    EXPECT_NO_THROW(hints.validate(space));
}

TEST(HintEstimator, FullyInfeasibleSpaceThrows)
{
    const auto space = est_space();
    const EvalFn eval = [](const Genome&) { return Evaluation{false, 0.0}; };
    EXPECT_THROW(HintEstimator{}.estimate(space, eval), std::runtime_error);
}

TEST(HintEstimator, NullEvalThrows)
{
    const auto space = est_space();
    EXPECT_THROW(HintEstimator{}.estimate(space, EvalFn{}), std::invalid_argument);
}

TEST(HintEstimator, ConstantMetricYieldsBaselineHints)
{
    const auto space = est_space();
    const EvalFn eval = [](const Genome&) { return Evaluation{true, 5.0}; };
    const HintSet hints = HintEstimator{}.estimate(space, eval);
    for (std::size_t i = 0; i < space.size(); ++i) {
        EXPECT_DOUBLE_EQ(hints.param(i).importance, 1.0);
        EXPECT_FALSE(hints.param(i).bias.has_value());
    }
}

}  // namespace
}  // namespace nautilus
