// Cross-module edge cases: boundary values, degenerate spaces, and
// consistency properties that the per-module suites do not pin down.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/ga.hpp"
#include "exp/experiment.hpp"
#include "fft/fft_generator.hpp"
#include "noc/network_generator.hpp"
#include "noc/router_generator.hpp"

namespace nautilus {
namespace {

using ip::Metric;

// ---- degenerate parameter spaces ---------------------------------------------

TEST(EdgeSpaces, SingleParameterSingleValueSpace)
{
    ParameterSpace space;
    space.add("only", ParamDomain::int_range(5, 5));
    const EvalFn eval = [](const Genome&) { return Evaluation{true, 1.0}; };
    GaConfig cfg;
    cfg.generations = 3;
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    const RunResult r = engine.run();
    // Only one point exists: exactly one distinct evaluation ever.
    EXPECT_EQ(r.distinct_evals, 1u);
    EXPECT_DOUBLE_EQ(r.best_eval.value, 1.0);
}

TEST(EdgeSpaces, TwoPointSpaceConverges)
{
    ParameterSpace space;
    space.add("bit", ParamDomain::boolean());
    const EvalFn eval = [](const Genome& g) {
        return Evaluation{true, g.gene(0) == 1 ? 10.0 : 1.0};
    };
    GaConfig cfg;
    cfg.generations = 5;
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_DOUBLE_EQ(r.best_eval.value, 10.0);
    EXPECT_LE(r.distinct_evals, 2u);
}

TEST(EdgeSpaces, MutationOnAllSingleValueDomainsIsHarmless)
{
    ParameterSpace space;
    space.add("a", ParamDomain::int_range(1, 1));
    space.add("b", ParamDomain::int_range(2, 2));
    const HintSet hints = HintSet::none(space);
    MutationContext ctx;
    ctx.space = &space;
    ctx.hints = &hints;
    ctx.mutation_rate = 1.0;
    Rng rng{1};
    Genome g = Genome::zeros(space);
    EXPECT_EQ(mutate(g, ctx, rng), 0u);
    EXPECT_EQ(g, Genome::zeros(space));
}

// ---- extreme objective values -------------------------------------------------

TEST(EdgeObjectives, NegativeValuedMaximization)
{
    ParameterSpace space;
    space.add("x", ParamDomain::int_range(0, 9));
    const EvalFn eval = [](const Genome& g) {
        return Evaluation{true, -100.0 + static_cast<double>(g.gene(0))};
    };
    GaConfig cfg;
    cfg.generations = 25;
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_DOUBLE_EQ(r.best_eval.value, -91.0);
}

TEST(EdgeObjectives, HugeMagnitudesSurviveRouletteNormalization)
{
    ParameterSpace space;
    space.add("x", ParamDomain::int_range(0, 9));
    const EvalFn eval = [](const Genome& g) {
        return Evaluation{true, 1e15 + 1e12 * static_cast<double>(g.gene(0))};
    };
    GaConfig cfg;
    cfg.generations = 25;
    const GaEngine engine{space, cfg, Direction::minimize, eval, HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_DOUBLE_EQ(r.best_eval.value, 1e15);
}

TEST(EdgeObjectives, SingleFeasiblePointIsFound)
{
    ParameterSpace space;
    space.add("x", ParamDomain::int_range(0, 9));
    space.add("y", ParamDomain::int_range(0, 9));
    const EvalFn eval = [](const Genome& g) -> Evaluation {
        if (g.gene(0) != 7 || g.gene(1) != 3) return {false, 0.0};
        return {true, 42.0};
    };
    GaConfig cfg;
    cfg.generations = 80;
    cfg.seed = 4;
    const GaEngine engine{space, cfg, Direction::maximize, eval, HintSet::none(space)};
    const RunResult r = engine.run();
    // 100-point space, 80 generations: the needle should be found.
    EXPECT_TRUE(r.best_eval.feasible);
    EXPECT_DOUBLE_EQ(r.best_eval.value, 42.0);
}

// ---- hint corner cases ---------------------------------------------------------

TEST(EdgeHints, MergeOfSingleComponentIsIdentityOnBias)
{
    ParameterSpace space;
    space.add("x", ParamDomain::int_range(0, 9));
    HintSet a = HintSet::none(space);
    a.param(0).bias = 0.4;
    a.param(0).importance = 25.0;
    const std::vector<WeightedHintSet> one{{&a, 2.0}};
    const HintSet merged = merge_hints(one);
    EXPECT_DOUBLE_EQ(*merged.param(0).bias, 0.4);
    EXPECT_DOUBLE_EQ(merged.param(0).importance, 25.0);
}

TEST(EdgeHints, DoubleNegationIsIdentity)
{
    ParameterSpace space;
    space.add("x", ParamDomain::int_range(0, 9));
    HintSet a = HintSet::none(space);
    a.param(0).bias = -0.3;
    const HintSet back = a.negated_bias().negated_bias();
    EXPECT_DOUBLE_EQ(*back.param(0).bias, -0.3);
}

TEST(EdgeHints, TargetAtDomainBoundaryIsValid)
{
    ParameterSpace space;
    space.add("x", ParamDomain::pow2(2, 6));  // 4..64
    HintSet h = HintSet::none(space);
    h.param(0).target = 4.0;
    EXPECT_NO_THROW(h.validate(space));
    h.param(0).target = 64.0;
    EXPECT_NO_THROW(h.validate(space));
}

TEST(EdgeHints, ValueDistributionWithTargetEqualCurrent)
{
    // Target index == current index: mass must flow to the neighbors, not
    // vanish.
    const auto d = ParamDomain::int_range(0, 9);
    ParamHints h;
    h.target = 5.0;
    const auto w = value_distribution(d, h, 0.9, 5);
    double total = 0.0;
    for (double v : w) total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(w[5], 0.0);
    EXPECT_GT(w[4] + w[6], 0.3);  // neighbors inherit the peak
}

// ---- run_stats boundaries ------------------------------------------------------

TEST(EdgeCurves, ValueAtExactBoundaries)
{
    Curve c{Direction::maximize};
    c.append(10, 1.0);
    c.append(20, 2.0);
    EXPECT_DOUBLE_EQ(*c.value_at(10.0), 1.0);
    EXPECT_DOUBLE_EQ(*c.value_at(20.0), 2.0);
    EXPECT_FALSE(c.value_at(9.999).has_value());
}

TEST(EdgeCurves, MeanCurveWithIdenticalRuns)
{
    MultiRunCurve m{Direction::minimize};
    for (int i = 0; i < 3; ++i) {
        Curve c{Direction::minimize};
        c.append(5, 50.0);
        c.append(15, 30.0);
        m.add_run(std::move(c));
    }
    const auto mean = m.mean_curve({5.0, 15.0});
    EXPECT_DOUBLE_EQ(mean[0].best, 50.0);
    EXPECT_DOUBLE_EQ(mean[1].best, 30.0);
}

// ---- generator consistency properties ------------------------------------------

class RouterConsistencySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterConsistencySweep, DerivedMetricsAreConsistent)
{
    const noc::RouterGenerator gen;
    Rng rng{GetParam()};
    for (int i = 0; i < 50; ++i) {
        const Genome g = Genome::random(gen.space(), rng);
        const auto mv = gen.evaluate(g);
        ASSERT_TRUE(mv.feasible);
        EXPECT_NEAR(mv.get(Metric::period_ns) * mv.get(Metric::freq_mhz), 1000.0, 1e-6);
        EXPECT_NEAR(mv.get(Metric::area_delay_product),
                    mv.get(Metric::period_ns) * mv.get(Metric::area_luts), 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterConsistencySweep, ::testing::Values(1u, 2u, 3u));

TEST(EdgeGenerators, FftSnrCacheGivesIdenticalRepeats)
{
    const fft::FftGenerator gen;  // SNR measurement on
    Genome g = Genome::zeros(gen.space());
    g.set_gene(fft::fft_gene::scaling, 1);
    const double a = gen.evaluate(g).get(Metric::snr_db);
    const double b = gen.evaluate(g).get(Metric::snr_db);
    EXPECT_DOUBLE_EQ(a, b);

    // Streaming width does not affect the SNR key: same quantization, same
    // measured SNR.
    Genome wider = g;
    wider.set_gene(fft::fft_gene::streaming_width, 2);
    EXPECT_DOUBLE_EQ(gen.evaluate(wider).get(Metric::snr_db), a);
}

TEST(EdgeGenerators, FftDspAndBramMetricsBehave)
{
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), false};
    // Narrow widths -> DSP multipliers; wide -> LUT multipliers, zero DSPs.
    Genome narrow = Genome::zeros(gen.space());
    narrow.set_gene(fft::fft_gene::data_width, 0);  // 8 bits
    Genome wide = narrow;
    wide.set_gene(fft::fft_gene::data_width, 9);  // 26 bits
    EXPECT_GT(gen.evaluate(narrow).get(Metric::dsps), 0.0);
    EXPECT_DOUBLE_EQ(gen.evaluate(wide).get(Metric::dsps), 0.0);

    // Large transforms spill stream buffers into block RAM.
    Genome big = narrow;
    big.set_gene(fft::fft_gene::log2n, 6);  // n = 4096
    EXPECT_GT(gen.evaluate(big).get(Metric::brams), 0.0);
    EXPECT_DOUBLE_EQ(gen.evaluate(narrow).get(Metric::brams), 0.0);
}

TEST(EdgeGenerators, NetworkLatencyMetricsAreConsistent)
{
    const noc::NetworkGenerator gen;
    Rng rng{11};
    for (int i = 0; i < 30; ++i) {
        const Genome g = Genome::random(gen.space(), rng);
        const auto mv = gen.evaluate(g);
        ASSERT_TRUE(mv.feasible);
        EXPECT_GT(mv.get(Metric::latency_ns), 0.0);
        EXPECT_GT(mv.get(Metric::saturation_injection), 0.0);
        EXPECT_LE(mv.get(Metric::saturation_injection), 1.3);
    }
}

TEST(EdgeGenerators, NetworkButterflyHasLowestZeroLoadHops)
{
    const noc::NetworkGenerator gen;
    EXPECT_LT(gen.traffic(noc::TopologyKind::butterfly).avg_hops,
              gen.traffic(noc::TopologyKind::mesh).avg_hops);
}

// ---- experiment harness edges ---------------------------------------------------

TEST(EdgeExperiment, GridPointsControlSeriesResolution)
{
    ParameterSpace space;
    space.add("x", ParamDomain::int_range(0, 9));

    class Tiny final : public ip::IpGenerator {
    public:
        explicit Tiny(const ParameterSpace& s) : space_(s) {}
        std::string name() const override { return "tiny"; }
        const ParameterSpace& space() const override { return space_; }
        std::vector<Metric> metrics() const override { return {Metric::area_luts}; }
        ip::MetricValues evaluate(const Genome& g) const override
        {
            ip::MetricValues mv;
            mv.set(Metric::area_luts, 10.0 + g.gene(0));
            return mv;
        }

    private:
        const ParameterSpace& space_;
    } gen{space};

    exp::ExperimentConfig cfg;
    cfg.runs = 3;
    cfg.ga.generations = 5;
    cfg.grid_points = 7;
    exp::Experiment e{gen, exp::Query::simple("q", Metric::area_luts, Direction::minimize),
                      cfg};
    e.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
    const auto r = e.run();
    EXPECT_EQ(r.shared_grid().size(), 7u);
}

TEST(EdgeSeries, TableHandlesMissingLeadingValues)
{
    std::ostringstream out;
    // Second series starts later than the first grid point: renders "-".
    exp::print_series_table(out, "x", "y", {1.0, 10.0},
                            {{"early", {{1, 1.0}}}, {"late", {{10, 2.0}}}});
    EXPECT_NE(out.str().find('-'), std::string::npos);
}

TEST(EdgeSeries, ChartToleratesFlatSeries)
{
    std::ostringstream out;
    exp::print_ascii_chart(out, "flat", {{"s", {{0, 5.0}, {100, 5.0}}}}, 20, 5);
    EXPECT_NE(out.str().find("flat"), std::string::npos);
}

}  // namespace
}  // namespace nautilus
