// ObsHttpServer tests: endpoint routing, real-socket round trips, and a
// scrape-under-load test that runs HTTP GETs concurrently with a
// multi-worker GA evaluation (exercised under TSan in CI).

#include "obs/http_server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "core/ga.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"

using namespace nautilus;
using namespace nautilus::obs;

namespace {

// Minimal blocking HTTP client: one GET, returns the full response text.
std::string http_get(std::uint16_t port, const std::string& target,
                     const std::string& method = "GET")
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return {};
    }
    const std::string request =
        method + " " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
    (void)!::send(fd, request.data(), request.size(), 0);
    std::string response;
    char buf[2048];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

// Same client, but the caller supplies the raw request text (used to probe
// body handling: Content-Length parsing, the 411 path).
std::string http_raw(std::uint16_t port, const std::string& request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return {};
    }
    (void)!::send(fd, request.data(), request.size(), 0);
    std::string response;
    char buf[2048];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

TEST(ObsHttpServer, BindsEphemeralPortAndReportsIt)
{
    ObsHttpServer server{{}, nullptr, nullptr};
    server.start();
    EXPECT_TRUE(server.running());
    EXPECT_NE(server.port(), 0);
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(ObsHttpServer, StopIsIdempotentAndRestartable)
{
    ObsHttpServer server{{}, nullptr, nullptr};
    server.start();
    server.stop();
    server.stop();
    server.start();
    EXPECT_TRUE(server.running());
    server.stop();
}

TEST(ObsHttpServer, RoutesBodies)
{
    auto metrics = std::make_shared<MetricsRegistry>();
    metrics->counter("eval.items").add(5);
    auto progress = std::make_shared<ProgressTracker>();
    progress->on_run_start("ga", 10);
    ObsHttpServer server{{}, metrics, progress};

    EXPECT_EQ(server.body_for("/healthz"), "ok\n");
    const std::string exposition = server.body_for("/metrics");
    EXPECT_NE(exposition.find("nautilus_eval_items_total 5"), std::string::npos);
    EXPECT_NE(exposition.find("nautilus_progress_running 1"), std::string::npos);
    const std::string status = server.body_for("/status");
    EXPECT_NE(status.find("\"engine\":\"ga\""), std::string::npos);
    EXPECT_NE(status.find("\"running\":true"), std::string::npos);
    EXPECT_NE(server.body_for("/").find("/metrics"), std::string::npos);
    EXPECT_TRUE(server.body_for("/nope").empty());
}

TEST(ObsHttpServer, NullSourcesServeEmptyDefaults)
{
    ObsHttpServer server{{}, nullptr, nullptr};
    // /status always reports the server's own uptime, even with no sources
    // attached; everything else stays at its empty default.
    const std::string status = server.body_for("/status");
    EXPECT_EQ(status.rfind("{\"uptime_seconds\":", 0), 0u) << status;
    EXPECT_EQ(status.back(), '\n');
    EXPECT_EQ(server.body_for("/lineage"), "{}\n");
    // No logger attached: /logs is absent (404 through respond()).
    EXPECT_TRUE(server.body_for("/logs").empty());
    EXPECT_TRUE(server.body_for("/metrics").empty());
}

TEST(ObsHttpServer, LineageEndpointServesCountersAndExposition)
{
    auto lineage = std::make_shared<LineageTracker>();
    const std::vector<GeneOrigin> origins{GeneOrigin::parent_a, GeneOrigin::bias};
    lineage->on_birth(BirthOp::crossover, origins);
    lineage->on_survived();
    ObsHttpServer server{{}, std::make_shared<MetricsRegistry>(), nullptr, lineage};
    server.start();

    const std::string body = http_get(server.port(), "/lineage");
    EXPECT_NE(body.find("Content-Type: application/json"), std::string::npos);
    EXPECT_NE(body.find("\"births\":1"), std::string::npos);
    EXPECT_NE(body.find("\"genes_bias\":1"), std::string::npos);
    EXPECT_NE(body.find("\"survived\":1"), std::string::npos);

    const std::string exposition = http_get(server.port(), "/metrics");
    EXPECT_NE(exposition.find("nautilus_lineage_births 1"), std::string::npos);
    EXPECT_NE(exposition.find("nautilus_lineage_crossover_births 1"),
              std::string::npos);
    EXPECT_NE(exposition.find("nautilus_lineage_genes_bias 1"), std::string::npos);

    EXPECT_NE(http_get(server.port(), "/").find("/lineage"), std::string::npos);
    server.stop();
}

TEST(ObsHttpServer, ServesOverRealSockets)
{
    auto metrics = std::make_shared<MetricsRegistry>();
    metrics->counter("eval.items").add(9);
    auto progress = std::make_shared<ProgressTracker>();
    ObsHttpServer server{{}, metrics, progress};
    server.start();

    const std::string health = http_get(server.port(), "/healthz");
    EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos);

    const std::string metrics_response = http_get(server.port(), "/metrics");
    EXPECT_NE(metrics_response.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(metrics_response.find("nautilus_eval_items_total 9"), std::string::npos);

    const std::string status = http_get(server.port(), "/status");
    EXPECT_NE(status.find("Content-Type: application/json"), std::string::npos);
    EXPECT_NE(status.find("\"runs_started\":0"), std::string::npos);

    // Query strings are ignored; unknown paths 404; non-GET methods 405.
    EXPECT_NE(http_get(server.port(), "/healthz?probe=1").find("200 OK"),
              std::string::npos);
    EXPECT_NE(http_get(server.port(), "/nope").find("404 Not Found"),
              std::string::npos);
    EXPECT_NE(http_get(server.port(), "/metrics", "POST").find("405"),
              std::string::npos);

    EXPECT_GE(server.requests_served(), 6u);
    server.stop();
}

// RFC 9110 method discipline on the read-only endpoints: any non-GET/HEAD
// method gets 405 with an Allow header naming what the resource supports --
// whether or not the request carried a (properly announced) body.
TEST(ObsHttpServer, NonGetMethodsGet405WithAllowHeader)
{
    ObsHttpServer server{{}, std::make_shared<MetricsRegistry>(), nullptr};
    server.start();
    for (const std::string method : {"POST", "PUT", "DELETE", "PATCH"}) {
        const std::string response = http_get(server.port(), "/metrics", method);
        EXPECT_NE(response.find("405 Method Not Allowed"), std::string::npos) << method;
        EXPECT_NE(response.find("Allow: GET, HEAD"), std::string::npos) << method;
    }
    const std::string with_body = http_raw(
        server.port(),
        "POST /status HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\nhi");
    EXPECT_NE(with_body.find("405 Method Not Allowed"), std::string::npos);
    EXPECT_NE(with_body.find("Allow: GET, HEAD"), std::string::npos);
    // GET still works after the refusals.
    EXPECT_NE(http_get(server.port(), "/healthz").find("200 OK"), std::string::npos);
    server.stop();
}

// RFC 9110 section 8.6: a request that carries a body without announcing it
// via Content-Length is refused with 411 rather than the body being guessed
// at or silently dropped.  A bad Content-Length value is a plain 400, and an
// announced body that exceeds the request cap is 413.
TEST(ObsHttpServer, BodyWithoutContentLengthGets411)
{
    ObsHttpServer server{{}, nullptr, nullptr};
    server.start();

    const std::string no_length = http_raw(
        server.port(), "POST /jobs HTTP/1.1\r\nHost: x\r\n\r\n{\"engine\":\"ga\"}");
    EXPECT_NE(no_length.find("411 Length Required"), std::string::npos);

    const std::string bad_length = http_raw(
        server.port(), "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: two\r\n\r\nhi");
    EXPECT_NE(bad_length.find("400 Bad Request"), std::string::npos);

    const std::string huge = http_raw(
        server.port(),
        "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 9999999\r\n\r\nx");
    EXPECT_NE(huge.find("413"), std::string::npos);
    server.stop();
}

// RFC 9110 section 9.3.2: a HEAD response carries the headers the matching
// GET would carry — in particular the GET body's Content-Length — but no
// payload.  (A past bug cleared the body before the header was computed,
// advertising Content-Length: 0 and breaking HEAD-based scrape probes.)
TEST(ObsHttpServer, HeadMatchesGetHeadersWithEmptyBody)
{
    auto metrics = std::make_shared<MetricsRegistry>();
    metrics->counter("eval.items").add(9);
    ObsHttpServer server{{}, metrics, std::make_shared<ProgressTracker>()};
    server.start();

    // /metrics and /status embed wall-clock gauges (elapsed seconds, rates),
    // so two requests made at different instants can legitimately render
    // bodies of different lengths -- and every request gets its own
    // X-Nautilus-Request-Id.  Compare headers with both per-request values
    // masked; Content-Length itself is checked against the body of the same
    // request, which is exact.
    const auto mask_length = [](std::string headers) {
        for (const std::string key : {"Content-Length: ", "X-Nautilus-Request-Id: "}) {
            const std::size_t pos = headers.find(key);
            if (pos == std::string::npos) continue;
            std::size_t end = pos + key.size();
            while (end < headers.size() &&
                   std::isdigit(static_cast<unsigned char>(headers[end])))
                ++end;
            headers.replace(pos + key.size(), end - (pos + key.size()), "N");
        }
        return headers;
    };
    for (const std::string target : {"/healthz", "/metrics", "/status", "/nope"}) {
        const std::string get = http_get(server.port(), target);
        const std::string head = http_get(server.port(), target, "HEAD");

        const std::size_t get_split = get.find("\r\n\r\n");
        const std::size_t head_split = head.find("\r\n\r\n");
        ASSERT_NE(get_split, std::string::npos) << target;
        ASSERT_NE(head_split, std::string::npos) << target;

        // Identical status line and headers (Content-Length present, its
        // digits masked against clock skew between the two requests) ...
        EXPECT_EQ(mask_length(head.substr(0, head_split)),
                  mask_length(get.substr(0, get_split)))
            << target;
        EXPECT_NE(head.find("Content-Length: "), std::string::npos) << target;
        EXPECT_EQ(head.find("Content-Length: 0\r\n"), std::string::npos) << target;
        // ... and the advertised length names the GET body, which HEAD omits.
        const std::string get_body = get.substr(get_split + 4);
        EXPECT_NE(get.find("Content-Length: " + std::to_string(get_body.size())),
                  std::string::npos)
            << target;
        EXPECT_TRUE(head.substr(head_split + 4).empty()) << target;
        EXPECT_FALSE(get_body.empty()) << target;
    }
    server.stop();
}

// The TSan target: scrape /metrics and /status over live sockets while a GA
// run evaluates with 4 workers, all three obs surfaces (tracer off, metrics,
// progress) attached.  Snapshot paths must be data-race free against the
// engine thread and the evaluator pool.
TEST(ObsHttpServerConcurrency, ScrapingDuringParallelEvaluationIsSafe)
{
    ParameterSpace space;
    for (int i = 0; i < 4; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 7));

    GaConfig cfg;
    cfg.generations = 30;
    cfg.population_size = 16;
    cfg.seed = 2015;
    cfg.eval_workers = 4;
    cfg.obs.metrics = std::make_shared<MetricsRegistry>();
    cfg.obs.progress = std::make_shared<ProgressTracker>();
    cfg.obs.lineage = std::make_shared<LineageTracker>();

    ObsHttpServer server{{}, cfg.obs.metrics, cfg.obs.progress, cfg.obs.lineage};
    server.start();

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> scrapes{0};
    std::thread scraper{[&] {
        while (!done.load(std::memory_order_acquire)) {
            const std::string m = http_get(server.port(), "/metrics");
            const std::string s = http_get(server.port(), "/status");
            const std::string l = http_get(server.port(), "/lineage");
            if (!m.empty() && !s.empty() && !l.empty())
                scrapes.fetch_add(1, std::memory_order_relaxed);
        }
    }};

    const GaEngine engine{space, cfg, Direction::maximize,
                          [](const Genome& g) {
                              double v = 0.0;
                              for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
                              return Evaluation{true, v};
                          },
                          HintSet::none(space)};
    const RunResult result = engine.run();

    done.store(true, std::memory_order_release);
    scraper.join();
    server.stop();

    EXPECT_GT(scrapes.load(), 0u);
    // The final scrape-visible state agrees with the run result.
    const ProgressSnapshot snap = cfg.obs.progress->snapshot();
    EXPECT_EQ(snap.distinct_evals, result.distinct_evals);
    EXPECT_EQ(snap.eval_calls, result.total_eval_calls);
    EXPECT_EQ(snap.runs_completed, 1u);
    EXPECT_FALSE(snap.running);
    const LineageCounters lineage = cfg.obs.lineage->counters();
    EXPECT_EQ(lineage.runs, 1u);
    EXPECT_GE(lineage.births, cfg.population_size);
    EXPECT_TRUE(lineage.have_last);
    EXPECT_EQ(lineage.last.births, lineage.births);
}

}  // namespace
