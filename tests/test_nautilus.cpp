#include "core/nautilus.hpp"

#include <gtest/gtest.h>

namespace nautilus {
namespace {

ParameterSpace guided_space()
{
    ParameterSpace space;
    for (int i = 0; i < 6; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 9));
    return space;
}

// Objective with optimum at all-9; each unit step matters.
Evaluation sum_eval(const Genome& g)
{
    double v = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
    return {true, v};
}

HintSet perfect_hints(const ParameterSpace& space)
{
    HintSet hints = HintSet::none(space);
    for (std::size_t i = 0; i < space.size(); ++i) {
        hints.param(i).importance = 50.0;
        hints.param(i).bias = 0.9;  // metric increases with every parameter
    }
    return hints;
}

TEST(Guidance, NamesAndConfidences)
{
    EXPECT_STREQ(guidance_name(GuidanceLevel::none), "baseline");
    EXPECT_STREQ(guidance_name(GuidanceLevel::weak), "weakly guided");
    EXPECT_STREQ(guidance_name(GuidanceLevel::strong), "strongly guided");
    EXPECT_DOUBLE_EQ(guidance_confidence(GuidanceLevel::none, 0.5), 0.0);
    EXPECT_GT(guidance_confidence(GuidanceLevel::strong, 0.0),
              guidance_confidence(GuidanceLevel::weak, 0.0));
    EXPECT_DOUBLE_EQ(guidance_confidence(GuidanceLevel::custom, 0.37), 0.37);
}

TEST(ApplyGuidance, MaximizeKeepsBiasSign)
{
    const auto space = guided_space();
    const HintSet author = perfect_hints(space);
    const HintSet h = apply_guidance(author, Direction::maximize, GuidanceLevel::strong);
    EXPECT_DOUBLE_EQ(*h.param(0).bias, 0.9);
    EXPECT_GT(h.confidence(), 0.5);
}

TEST(ApplyGuidance, MinimizeFlipsBiasSign)
{
    const auto space = guided_space();
    const HintSet author = perfect_hints(space);
    const HintSet h = apply_guidance(author, Direction::minimize, GuidanceLevel::strong);
    EXPECT_DOUBLE_EQ(*h.param(0).bias, -0.9);
}

TEST(ApplyGuidance, NoneLevelZeroesConfidence)
{
    const auto space = guided_space();
    HintSet author = perfect_hints(space);
    author.set_confidence(0.9);
    const HintSet h = apply_guidance(author, Direction::maximize, GuidanceLevel::none);
    EXPECT_DOUBLE_EQ(h.confidence(), 0.0);
    EXPECT_TRUE(h.is_baseline());
}

TEST(ApplyGuidance, CustomKeepsAuthorConfidence)
{
    const auto space = guided_space();
    HintSet author = perfect_hints(space);
    author.set_confidence(0.61);
    const HintSet h = apply_guidance(author, Direction::maximize, GuidanceLevel::custom);
    EXPECT_DOUBLE_EQ(h.confidence(), 0.61);
}

TEST(NautilusEngine, GuidedReachesOptimumFasterOnAverage)
{
    const auto space = guided_space();
    GaConfig cfg;
    cfg.generations = 40;
    cfg.seed = 11;
    const HintSet author = perfect_hints(space);

    const GaEngine baseline{space, cfg, Direction::maximize, sum_eval,
                            HintSet::none(space)};
    const NautilusEngine guided{space, cfg, Direction::maximize, sum_eval, author,
                                GuidanceLevel::strong};

    const MultiRunCurve base_curve = baseline.run_many(15);
    const MultiRunCurve guided_curve = guided.run_many(15);

    // Quality threshold: within 2 units of the optimum (54).
    const auto base_conv = base_curve.evals_to_reach(52.0);
    const auto guided_conv = guided_curve.evals_to_reach(52.0);
    EXPECT_GE(guided_conv.reached, base_conv.reached);
    EXPECT_GT(guided_curve.mean_final_best() + 0.5, base_curve.mean_final_best());
    if (base_conv.reached > 10 && guided_conv.reached > 10) {
        EXPECT_LT(guided_conv.mean_evals, base_conv.mean_evals);
    }
}

TEST(NautilusEngine, WrongHintsDoNotBreakTheSearch)
{
    // Inverted bias: hints claim the metric decreases with every parameter.
    // The stochastic GA must still find good solutions (paper footnote 1),
    // just more slowly.
    const auto space = guided_space();
    GaConfig cfg;
    cfg.generations = 60;
    cfg.seed = 13;
    HintSet wrong = perfect_hints(space);
    for (std::size_t i = 0; i < space.size(); ++i) wrong.param(i).bias = -0.9;

    const NautilusEngine misled{space, cfg, Direction::maximize, sum_eval, wrong,
                                GuidanceLevel::strong};
    const MultiRunCurve curve = misled.run_many(10);
    // Optimum is 54; even misled runs should get most of the way there.
    EXPECT_GT(curve.mean_final_best(), 40.0);
}

TEST(NautilusEngine, LevelIsRecorded)
{
    const auto space = guided_space();
    GaConfig cfg;
    cfg.generations = 5;
    const NautilusEngine e{space, cfg, Direction::maximize, sum_eval,
                           perfect_hints(space), GuidanceLevel::weak};
    EXPECT_EQ(e.level(), GuidanceLevel::weak);
    EXPECT_DOUBLE_EQ(e.engine().hints().confidence(),
                     guidance_confidence(GuidanceLevel::weak, 0.0));
}

TEST(NautilusEngine, RunIsDeterministicPerSeed)
{
    const auto space = guided_space();
    GaConfig cfg;
    cfg.generations = 10;
    const NautilusEngine e{space, cfg, Direction::maximize, sum_eval,
                           perfect_hints(space), GuidanceLevel::strong};
    const RunResult a = e.run(77);
    const RunResult b = e.run(77);
    EXPECT_EQ(a.best_genome, b.best_genome);
    EXPECT_EQ(a.distinct_evals, b.distinct_evals);
}

class ConfidenceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ConfidenceSweep, AnyConfidenceProducesValidRuns)
{
    const auto space = guided_space();
    GaConfig cfg;
    cfg.generations = 15;
    cfg.seed = 17;
    HintSet hints = perfect_hints(space);
    hints.set_confidence(GetParam());
    const GaEngine e{space, cfg, Direction::maximize, sum_eval, hints};
    const RunResult r = e.run();
    EXPECT_TRUE(r.best_eval.feasible);
    EXPECT_GE(r.best_eval.value, 30.0);
}

INSTANTIATE_TEST_SUITE_P(Confidences, ConfidenceSweep,
                         ::testing::Values(0.0, 0.2, 0.45, 0.8, 1.0));

}  // namespace
}  // namespace nautilus
