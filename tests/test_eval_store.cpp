#include "core/eval_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/ga.hpp"

namespace nautilus {
namespace {

namespace fs = std::filesystem;

// Fresh store directory per test; removed up front so reruns start clean.
std::string store_dir(const std::string& name)
{
    const std::string path = ::testing::TempDir() + "nautilus_store_" + name;
    fs::remove_all(path);
    return path;
}

EvalStoreConfig small_config(const std::string& name)
{
    EvalStoreConfig cfg;
    cfg.path = store_dir(name);
    cfg.flush_every = 4;
    return cfg;
}

Genome genome(std::initializer_list<std::uint32_t> genes)
{
    return Genome{std::vector<std::uint32_t>(genes)};
}

// The single segment file of a freshly flushed store (tests that tamper
// with on-disk state need the real path).
std::string only_segment(const std::string& dir)
{
    std::string found;
    for (const auto& entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("seg-", 0) == 0) {
            EXPECT_TRUE(found.empty()) << "more than one segment in " << dir;
            found = entry.path().string();
        }
    }
    EXPECT_FALSE(found.empty()) << "no segment file in " << dir;
    return found;
}

TEST(EvalStoreConfig, ValidationCatchesBadSettings)
{
    EvalStoreConfig cfg;
    cfg.path = "";
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = EvalStoreConfig{};
    cfg.path = "x";
    cfg.flush_every = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = EvalStoreConfig{};
    cfg.path = "x";
    cfg.segment_bytes = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = EvalStoreConfig{};
    cfg.path = "x";
    cfg.compact_dead_ratio = -0.1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = EvalStoreConfig{};
    cfg.path = "x";
    EXPECT_NO_THROW(cfg.validate());
}

TEST(EvalStore, RoundTripAcrossReopenIsBitExact)
{
    const EvalStoreConfig cfg = small_config("roundtrip");
    const std::uint64_t ns = EvalStore::namespace_key("router/freq_mhz");

    // Values chosen to break text round-trips: negative zero, a denormal,
    // and a value with no short decimal representation.
    const std::vector<double> tricky = {-0.0, std::numeric_limits<double>::denorm_min(),
                                        0.1 + 0.2, -123456789.000000001,
                                        std::numeric_limits<double>::max()};
    {
        EvalStore store{cfg};
        store.insert(ns, genome({1, 2, 3}), StoredResult{true, tricky});
        store.insert(ns, genome({4, 5, 6}), StoredResult{false, {}});
        store.flush();
    }
    EvalStore reopened{cfg};
    EXPECT_EQ(reopened.records(), 2u);

    const auto hit = reopened.lookup(ns, genome({1, 2, 3}));
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->feasible);
    ASSERT_EQ(hit->values.size(), tricky.size());
    for (std::size_t i = 0; i < tricky.size(); ++i)
        EXPECT_EQ(std::bit_cast<std::uint64_t>(hit->values[i]),
                  std::bit_cast<std::uint64_t>(tricky[i]))
            << "value " << i << " not bit-exact";

    const auto infeasible = reopened.lookup(ns, genome({4, 5, 6}));
    ASSERT_TRUE(infeasible.has_value());
    EXPECT_FALSE(infeasible->feasible);
    EXPECT_TRUE(infeasible->values.empty());

    EXPECT_FALSE(reopened.lookup(ns, genome({9, 9, 9})).has_value());
    EXPECT_EQ(reopened.counters().hits, 2u);
    EXPECT_EQ(reopened.counters().misses, 1u);
}

TEST(EvalStore, NamespacesIsolateResults)
{
    const EvalStoreConfig cfg = small_config("namespaces");
    const std::uint64_t ns_a = EvalStore::namespace_key("router/freq_mhz");
    const std::uint64_t ns_b = EvalStore::namespace_key("router/area_luts");
    ASSERT_NE(ns_a, ns_b);

    EvalStore store{cfg};
    store.insert(ns_a, genome({7, 7}), StoredResult{true, {1.0}});
    store.insert(ns_b, genome({7, 7}), StoredResult{true, {2.0}});
    EXPECT_EQ(store.records(), 2u);
    EXPECT_EQ(store.lookup(ns_a, genome({7, 7}))->values.front(), 1.0);
    EXPECT_EQ(store.lookup(ns_b, genome({7, 7}))->values.front(), 2.0);
}

TEST(EvalStore, TornTailIsTruncatedAndStoreStaysUsable)
{
    const EvalStoreConfig cfg = small_config("torntail");
    const std::uint64_t ns = 1;
    {
        EvalStore store{cfg};
        for (std::uint32_t i = 0; i < 5; ++i)
            store.insert(ns, genome({i, i + 1}), StoredResult{true, {double(i)}});
        store.flush();
    }
    // Simulate a crash mid-append: chop bytes off the end of the segment so
    // the final record is torn.
    const std::string seg = only_segment(cfg.path);
    const std::uintmax_t size = fs::file_size(seg);
    fs::resize_file(seg, size - 7);

    EvalStore reopened{cfg};
    EXPECT_EQ(reopened.records(), 4u);
    EXPECT_GE(reopened.counters().torn_dropped, 1u);
    // The dropped record reads as a miss and can be re-inserted.
    EXPECT_FALSE(reopened.lookup(ns, genome({4, 5})).has_value());
    reopened.insert(ns, genome({4, 5}), StoredResult{true, {4.0}});
    reopened.flush();
    EXPECT_EQ(reopened.records(), 5u);

    // A second reopen sees the repaired, complete store with no torn tail.
    EvalStore again{cfg};
    EXPECT_EQ(again.records(), 5u);
    EXPECT_EQ(again.counters().torn_dropped, 0u);
    EXPECT_EQ(again.lookup(ns, genome({4, 5}))->values.front(), 4.0);
}

TEST(EvalStore, MissingTrailingNewlineIsATornTail)
{
    const EvalStoreConfig cfg = small_config("nonewline");
    {
        EvalStore store{cfg};
        store.insert(2, genome({1}), StoredResult{true, {1.5}});
        store.insert(2, genome({2}), StoredResult{true, {2.5}});
        store.flush();
    }
    const std::string seg = only_segment(cfg.path);
    fs::resize_file(seg, fs::file_size(seg) - 1);  // drop only the final '\n'

    EvalStore reopened{cfg};
    EXPECT_EQ(reopened.records(), 1u);
    EXPECT_GE(reopened.counters().torn_dropped, 1u);
}

TEST(EvalStore, MidFileCorruptionIsAHardError)
{
    const EvalStoreConfig cfg = small_config("midcorrupt");
    {
        EvalStore store{cfg};
        for (std::uint32_t i = 0; i < 4; ++i)
            store.insert(3, genome({i}), StoredResult{true, {double(i)}});
        store.flush();
    }
    // Flip a digit inside the *first* record; this cannot be a torn tail, so
    // open() must refuse the store rather than silently drop data.
    const std::string seg = only_segment(cfg.path);
    std::string text;
    {
        std::ifstream in{seg};
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }
    const std::size_t pos = text.find("rec ");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 4] = text[pos + 4] == '3' ? '4' : '3';  // corrupt the ns field
    {
        std::ofstream out{seg, std::ios::trunc};
        out << text;
    }
    EXPECT_THROW(EvalStore{cfg}, std::runtime_error);
}

TEST(EvalStore, CompactionDropsSupersededDuplicates)
{
    const EvalStoreConfig cfg = small_config("compact");
    EvalStore store{cfg};
    for (int round = 0; round < 3; ++round)
        store.insert(4, genome({1, 2}), StoredResult{true, {double(round)}});
    store.insert(4, genome({3, 4}), StoredResult{true, {9.0}});
    store.flush();
    store.compact();
    EXPECT_EQ(store.records(), 2u);
    EXPECT_GE(store.counters().compactions, 1u);
    EXPECT_EQ(store.lookup(4, genome({1, 2}))->values.front(), 2.0);

    // Compaction commits through the manifest, so a reopen agrees.
    EvalStore reopened{cfg};
    EXPECT_EQ(reopened.records(), 2u);
    EXPECT_EQ(reopened.lookup(4, genome({1, 2}))->values.front(), 2.0);
    EXPECT_EQ(reopened.lookup(4, genome({3, 4}))->values.front(), 9.0);
}

TEST(EvalStore, SizeBudgetEvictsOldestFirst)
{
    EvalStoreConfig cfg = small_config("evict");
    EvalStore probe{cfg};
    probe.insert(5, genome({0}), StoredResult{true, {0.0}});
    const std::uint64_t per_record = probe.live_bytes();
    ASSERT_GT(per_record, 0u);

    cfg.path = store_dir("evict2");
    cfg.max_bytes = per_record * 3;  // room for three records
    EvalStore store{cfg};
    for (std::uint32_t i = 0; i < 8; ++i)
        store.insert(5, genome({i}), StoredResult{true, {double(i)}});
    store.flush();
    store.compact();

    EXPECT_LE(store.records(), 3u);
    EXPECT_GT(store.counters().evictions, 0u);
    EXPECT_LE(store.live_bytes(), cfg.max_bytes);
    // Newest records survive; the oldest are gone.
    EXPECT_TRUE(store.lookup(5, genome({7})).has_value());
    EXPECT_FALSE(store.lookup(5, genome({0})).has_value());
}

TEST(EvalStore, ConcurrentReadersWithSingleWriter)
{
    const EvalStoreConfig cfg = small_config("concurrent");
    EvalStore store{cfg};
    constexpr std::uint32_t kRecords = 200;
    for (std::uint32_t i = 0; i < kRecords / 2; ++i)
        store.insert(6, genome({i}), StoredResult{true, {double(i)}});

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> wrong{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_acquire)) {
                for (std::uint32_t i = 0; i < kRecords; ++i) {
                    const auto hit = store.lookup(6, genome({i}));
                    if (hit && hit->values.front() != double(i))
                        wrong.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (std::uint32_t i = kRecords / 2; i < kRecords; ++i)
        store.insert(6, genome({i}), StoredResult{true, {double(i)}});
    store.flush();
    store.compact();
    stop.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();

    EXPECT_EQ(wrong.load(), 0u);
    EXPECT_EQ(store.records(), kRecords);
}

TEST(EvalStoreConversions, ArityMismatchReadsAsMiss)
{
    EXPECT_FALSE(stored_to_evaluation(StoredResult{true, {}}).has_value());
    EXPECT_FALSE(stored_to_evaluation(StoredResult{true, {1.0, 2.0}}).has_value());
    const auto e = stored_to_evaluation(StoredResult{true, {3.5}});
    ASSERT_TRUE(e.has_value());
    EXPECT_TRUE(e->feasible);
    EXPECT_EQ(e->value, 3.5);
}

// -- warm-vs-cold determinism through the GA --------------------------------

ParameterSpace toy_space()
{
    ParameterSpace space;
    for (int i = 0; i < 4; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 7));
    return space;
}

// The acceptance criterion for the store: a warm run must reproduce the cold
// run's gated counters and results bit-for-bit while the underlying eval
// function runs ~zero times.
void check_warm_reproduces_cold(std::size_t workers)
{
    EvalStoreConfig cfg = small_config("warm_w" + std::to_string(workers));
    const auto space = toy_space();
    const std::uint64_t ns = EvalStore::namespace_key("toy/sum");

    std::atomic<std::size_t> underlying{0};
    const EvalFn counting_eval = [&underlying](const Genome& g) {
        underlying.fetch_add(1, std::memory_order_relaxed);
        double v = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
        return Evaluation{true, v};
    };

    GaConfig ga;
    ga.generations = 12;
    ga.seed = 99;
    ga.eval_workers = workers;
    ga.store = std::make_shared<EvalStore>(cfg);
    ga.store_namespace = ns;

    const GaEngine engine{space, ga, Direction::maximize, counting_eval,
                          HintSet::none(space)};
    const RunResult cold = engine.run(99);
    ga.store->flush();
    const std::size_t cold_evals = underlying.load();
    EXPECT_EQ(cold_evals, cold.distinct_evals);
    EXPECT_EQ(cold.store_hits, 0u);
    EXPECT_EQ(cold.store_misses, cold.distinct_evals);

    // Reopen the store from disk, as a separate process would.
    ga.store = std::make_shared<EvalStore>(cfg);
    const GaEngine warm_engine{space, ga, Direction::maximize, counting_eval,
                               HintSet::none(space)};
    const RunResult warm = warm_engine.run(99);

    EXPECT_EQ(underlying.load(), cold_evals) << "warm run paid for fresh evaluations";
    EXPECT_EQ(warm.store_hits, warm.distinct_evals);
    EXPECT_EQ(warm.store_misses, 0u);

    // Everything the determinism contract gates on is bit-identical.
    EXPECT_EQ(warm.distinct_evals, cold.distinct_evals);
    EXPECT_EQ(warm.total_eval_calls, cold.total_eval_calls);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(warm.best_eval.value),
              std::bit_cast<std::uint64_t>(cold.best_eval.value));
    EXPECT_EQ(warm.best_genome.genes(), cold.best_genome.genes());
    EXPECT_EQ(warm.final_rng_state, cold.final_rng_state);
    ASSERT_EQ(warm.history.size(), cold.history.size());
    for (std::size_t i = 0; i < cold.history.size(); ++i)
        EXPECT_EQ(std::bit_cast<std::uint64_t>(warm.history[i].best),
                  std::bit_cast<std::uint64_t>(cold.history[i].best))
            << "generation " << i;
}

TEST(EvalStoreGa, WarmRunReproducesColdRunSerially)
{
    check_warm_reproduces_cold(1);
}

TEST(EvalStoreGa, WarmRunReproducesColdRunWithWorkers)
{
    check_warm_reproduces_cold(4);
}

}  // namespace
}  // namespace nautilus
