// End-to-end integration tests: the full paper workflow on reduced budgets.
//
// These exercise the complete pipeline -- IP generator, virtual synthesis,
// offline dataset, hint estimation, guided search, convergence accounting --
// and assert the paper's qualitative claims on deterministic seeds.

#include <gtest/gtest.h>

#include "core/hint_estimator.hpp"
#include "exp/experiment.hpp"
#include "fft/fft_generator.hpp"
#include "noc/router_generator.hpp"

namespace nautilus {
namespace {

using exp::EngineSpec;
using exp::Experiment;
using exp::ExperimentConfig;
using exp::ExperimentResult;
using exp::Query;
using ip::Dataset;
using ip::Metric;

ExperimentConfig integration_config(std::size_t runs = 10, std::size_t gens = 60)
{
    ExperimentConfig cfg;
    cfg.runs = runs;
    cfg.ga.generations = gens;
    cfg.ga.seed = 2015;  // DAC'15
    return cfg;
}

TEST(Integration, FftGuidedBeatsBaselineOnMinLuts)
{
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), /*measure_snr=*/false};
    const Dataset ds = Dataset::enumerate(gen);
    const double best = ds.best(Metric::area_luts, Direction::minimize);

    Experiment e{gen, Query::simple("min-luts", Metric::area_luts, Direction::minimize),
                 integration_config()};
    e.use_dataset(ds);
    e.add_standard_engines();
    const ExperimentResult r = e.run();

    const double threshold = best * 1.10;
    const auto base = r.engines[0].curve.evals_to_reach(threshold);
    const auto strong = r.engines[2].curve.evals_to_reach(threshold);
    EXPECT_GE(strong.reached, base.reached);
    ASSERT_GT(strong.reached, 0u);
    ASSERT_GT(base.reached, 0u);
    EXPECT_LT(strong.mean_evals, base.mean_evals * 1.05);
}

TEST(Integration, FftStrongGuidanceIsFasterThanWeak)
{
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), false};
    const Dataset ds = Dataset::enumerate(gen);
    const double best = ds.best(Metric::area_luts, Direction::minimize);

    Experiment e{gen, Query::simple("min-luts", Metric::area_luts, Direction::minimize),
                 integration_config(16)};
    e.use_dataset(ds);
    e.add_standard_engines();
    const ExperimentResult r = e.run();

    // At 2x the optimum (paper Fig. 6 secondary threshold) everyone should
    // arrive; the guided engines sooner.
    const double threshold = best * 2.0;
    const auto base = r.engines[0].curve.evals_to_reach(threshold);
    const auto strong = r.engines[2].curve.evals_to_reach(threshold);
    EXPECT_EQ(base.reached, base.runs);
    EXPECT_EQ(strong.reached, strong.runs);
    EXPECT_LT(strong.mean_evals, base.mean_evals);
}

TEST(Integration, GaBeatsRandomSamplingByFar)
{
    // Paper footnote 3: random sampling needs orders of magnitude more
    // evaluations than the GA to hit a tight quality target.
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), false};
    const Dataset ds = Dataset::enumerate(gen);
    // A tight target where random sampling is genuinely expensive: the best
    // 0.1% of the feasible dataset.
    const double threshold =
        ds.percentile_threshold(Metric::area_luts, Direction::minimize, 0.001);

    // Analytic expectation for random sampling.
    const double hit = ds.hit_fraction(Metric::area_luts, Direction::minimize, threshold);
    const double random_expected = RandomSearch::expected_draws(hit);
    ASSERT_GE(random_expected, 500.0);

    Experiment e{gen, Query::simple("min-luts", Metric::area_luts, Direction::minimize),
                 integration_config()};
    e.use_dataset(ds);
    e.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
    const ExperimentResult r = e.run();
    const auto base = r.engines[0].curve.evals_to_reach(threshold);
    ASSERT_GT(base.reached, 0u);
    EXPECT_LT(base.mean_evals, random_expected / 2.0);
}

TEST(Integration, NocEstimatedHintsHelpFrequencyQuery)
{
    // The paper's NoC flow: a non-expert estimates hints from 80 synthesized
    // samples, then Nautilus uses them.
    const noc::RouterGenerator gen;
    const HintEstimator estimator;
    const HintSet estimated =
        estimator.estimate(gen.space(), gen.metric_eval(Metric::freq_mhz));
    EXPECT_NO_THROW(estimated.validate(gen.space()));

    // Pipeline depth must be identified as the dominant frequency knob.
    const std::size_t pipe = noc::router_gene::pipeline_stages;
    ASSERT_TRUE(estimated.param(pipe).bias.has_value());
    EXPECT_GT(*estimated.param(pipe).bias, 0.3);
    for (std::size_t i = 0; i < gen.space().size(); ++i)
        EXPECT_LE(estimated.param(i).importance, estimated.param(pipe).importance);

    Experiment e{gen, Query::simple("max-freq", Metric::freq_mhz, Direction::maximize),
                 integration_config(16)};
    e.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
    e.add_engine({"estimated-strong", GuidanceLevel::strong, estimated, std::nullopt});
    const ExperimentResult r = e.run();
    // The paper's Fig. 4 claim: at an equal (early) evaluation budget the
    // guided search has found better designs.  Compare the mean best-so-far
    // curves at a small budget.
    const auto base_at = r.engines[0].curve.mean_curve({100.0});
    const auto guided_at = r.engines[1].curve.mean_curve({100.0});
    ASSERT_FALSE(base_at.empty());
    ASSERT_FALSE(guided_at.empty());
    EXPECT_GE(guided_at[0].best, base_at[0].best - 1.0);
    // And guided runs consume no more synthesis jobs over the whole run.
    auto mean_evals = [](const MultiRunCurve& curve) {
        double total = 0.0;
        for (std::size_t i = 0; i < curve.runs(); ++i) total += curve.run(i).final_evals();
        return total / static_cast<double>(curve.runs());
    };
    EXPECT_LT(mean_evals(r.engines[1].curve), mean_evals(r.engines[0].curve) * 1.05);
}

TEST(Integration, WholeExperimentIsReproducible)
{
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), false};
    const Dataset ds = Dataset::enumerate(gen);
    const Query q = Query::simple("min-luts", Metric::area_luts, Direction::minimize);

    auto run_once = [&] {
        Experiment e{gen, q, integration_config(4, 20)};
        e.use_dataset(ds);
        e.add_standard_engines();
        return e.run();
    };
    const ExperimentResult a = run_once();
    const ExperimentResult b = run_once();
    for (std::size_t i = 0; i < a.engines.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.engines[i].curve.mean_final_best(),
                         b.engines[i].curve.mean_final_best());
    }
}

TEST(Integration, DatasetCostAccountingMatchesPaperSemantics)
{
    // Running against the dataset or the live generator must charge the same
    // number of distinct evaluations for the same seed.
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), false};
    const Dataset ds = Dataset::enumerate(gen);
    const Query q = Query::simple("min-luts", Metric::area_luts, Direction::minimize);

    const HintSet hints = exp::query_hints(gen, q);
    GaConfig cfg;
    cfg.generations = 20;
    const GaEngine live{gen.space(), cfg, q.direction, exp::query_eval(gen, q), hints};
    const GaEngine cached{gen.space(), cfg, q.direction, ds.lookup_eval(q.metric), hints};
    const RunResult a = live.run(5);
    const RunResult b = cached.run(5);
    EXPECT_EQ(a.distinct_evals, b.distinct_evals);
    EXPECT_DOUBLE_EQ(a.best_eval.value, b.best_eval.value);
}

TEST(Integration, Figure3StyleScoreCurves)
{
    // Fig. 3: design-solution score (%) per generation, bias hints only.
    const fft::FftGenerator gen{synth::FpgaTech::virtex6_lx760t(), false};
    const Dataset ds = Dataset::enumerate(gen);
    const Query q = Query::simple("min-luts", Metric::area_luts, Direction::minimize);

    HintSet bias_only = HintSet::none(gen.space());
    bias_only.param(fft::fft_gene::streaming_width).bias = -0.8;  // folded for minimize
    bias_only.param(fft::fft_gene::data_width).bias = -0.7;

    GaConfig cfg;
    cfg.generations = 40;
    cfg.seed = 33;
    const GaEngine baseline{gen.space(), cfg, q.direction, ds.lookup_eval(q.metric),
                            HintSet::none(gen.space())};
    HintSet guided_hints = bias_only;
    guided_hints.set_confidence(0.8);
    const GaEngine guided{gen.space(), cfg, q.direction, ds.lookup_eval(q.metric),
                          guided_hints};

    // Average generation-indexed scores over a few runs.
    auto mean_score_at_gen = [&](const GaEngine& engine, std::size_t gen_idx) {
        double total = 0.0;
        Rng seeder{77};
        constexpr int runs = 8;
        for (int i = 0; i < runs; ++i) {
            const RunResult r = engine.run(seeder.next_u64());
            total += ds.quality_percent(q.metric, q.direction,
                                        r.history[gen_idx].best_so_far);
        }
        return total / runs;
    };
    const double base_late = mean_score_at_gen(baseline, 35);
    const double guided_early = mean_score_at_gen(guided, 12);
    // Guided with bias hints reaches comparable scores in ~1/3 the
    // generations (paper: 15-23 vs 56).
    EXPECT_GT(guided_early, base_late - 2.0);
    EXPECT_GT(guided_early, 90.0);
}

}  // namespace
}  // namespace nautilus
