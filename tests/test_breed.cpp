#include "core/breed.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/ga.hpp"

namespace nautilus {
namespace {

ParameterSpace toy_space()
{
    ParameterSpace space;
    space.add("a", ParamDomain::int_range(0, 7));
    space.add("b", ParamDomain::int_range(0, 7));
    space.add("c", ParamDomain::int_range(0, 7));
    space.add("d", ParamDomain::int_range(0, 7));
    return space;
}

// Varied cardinalities, a single-value domain (mutation must skip it) and an
// unordered categorical (bias/target do not apply).
ParameterSpace mixed_space()
{
    ParameterSpace space;
    space.add("width", ParamDomain::int_range(0, 15));
    space.add("depth", ParamDomain::pow2(0, 6));
    space.add("flag", ParamDomain::boolean());
    space.add("algo", ParamDomain::categorical({"rr", "greedy", "ilp"}));
    space.add("fixed", ParamDomain::int_range(5, 5));
    return space;
}

// Exercises every hint channel: importance + decay, bias, target, step_scale.
HintSet guided_hints(const ParameterSpace& space)
{
    HintSet hints = HintSet::none(space);
    hints.set_confidence(0.7);
    hints.param(0).importance = 40.0;
    hints.param(0).importance_decay = 0.9;
    hints.param(0).bias = 0.8;
    hints.param(1).importance = 10.0;
    hints.param(1).target = 6.0;
    hints.param(1).step_scale = 0.3;
    if (space.size() > 4) hints.param(2).importance = 5.0;
    hints.validate(space);
    return hints;
}

Evaluation sum_eval(const Genome& g)
{
    double total = 0.0;
    for (auto v : g.genes()) total += static_cast<double>(v);
    return {true, total};
}

std::vector<Genome> random_population(const ParameterSpace& space, std::size_t n, Rng& rng)
{
    std::vector<Genome> population;
    population.reserve(n);
    for (std::size_t i = 0; i < n; ++i) population.push_back(Genome::random(space, rng));
    return population;
}

std::vector<double> random_fitness(std::size_t n, Rng& rng, bool with_infeasible)
{
    std::vector<double> fitness(n);
    for (auto& f : fitness) {
        f = rng.uniform() * 100.0;
        if (with_infeasible && rng.bernoulli(0.25))
            f = -std::numeric_limits<double>::infinity();
    }
    return fitness;
}

void expect_same_stats(const MutationStats& a, const MutationStats& b)
{
    EXPECT_EQ(a.genomes, b.genomes);
    EXPECT_EQ(a.genes_mutated, b.genes_mutated);
    EXPECT_EQ(a.bias_draws, b.bias_draws);
    EXPECT_EQ(a.target_draws, b.target_draws);
    EXPECT_EQ(a.uniform_draws, b.uniform_draws);
}

// ---------------------------------------------------------------------------
// SelectionTable vs select_parent: identical pick sequence and RNG state.

TEST(SelectionTable, MatchesSelectParentDrawForDraw)
{
    const SelectionConfig configs[] = {
        {SelectionKind::rank, 1.8, 2},
        {SelectionKind::rank, 1.0, 2},
        {SelectionKind::tournament, 1.8, 2},
        {SelectionKind::tournament, 1.8, 5},
        {SelectionKind::roulette, 1.8, 2},
    };
    Rng setup{2024};
    for (const auto& config : configs) {
        for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{10}}) {
            for (const bool infeasible : {false, true}) {
                const auto fitness = random_fitness(n, setup, infeasible);
                SelectionTable table;
                table.rebuild(fitness, config);
                Rng scalar_rng{77}, table_rng{77};
                for (int pick = 0; pick < 500; ++pick) {
                    const auto want = select_parent(fitness, config, scalar_rng);
                    const auto got = table.select(table_rng);
                    ASSERT_EQ(want, got)
                        << "kind=" << static_cast<int>(config.kind) << " n=" << n
                        << " pick=" << pick;
                }
                // Same draw count, not just same picks.
                EXPECT_EQ(scalar_rng.state(), table_rng.state());
            }
        }
    }
}

TEST(SelectionTable, AllInfeasibleRouletteFallsBackToUniform)
{
    const std::vector<double> fitness(6, -std::numeric_limits<double>::infinity());
    SelectionTable table;
    table.rebuild(fitness, {SelectionKind::roulette, 1.8, 2});
    Rng scalar_rng{5}, table_rng{5};
    for (int pick = 0; pick < 200; ++pick) {
        EXPECT_EQ(select_parent(fitness, {SelectionKind::roulette, 1.8, 2}, scalar_rng),
                  table.select(table_rng));
    }
    EXPECT_EQ(scalar_rng.state(), table_rng.state());
}

TEST(SelectionTable, RankWithOneMemberConsumesNoRng)
{
    const std::vector<double> fitness{3.0};
    SelectionTable table;
    table.rebuild(fitness, {SelectionKind::rank, 1.8, 2});
    Rng rng{9};
    const auto before = rng.state();
    EXPECT_EQ(table.select(rng), 0u);
    EXPECT_EQ(rng.state(), before);
}

TEST(SelectionTable, ValidatesLikeSelectParent)
{
    SelectionTable table;
    EXPECT_THROW(table.rebuild({}, {SelectionKind::rank, 1.8, 2}), std::invalid_argument);
    const std::vector<double> fitness{1.0, 2.0};
    EXPECT_THROW(table.rebuild(fitness, {SelectionKind::rank, 2.5, 2}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// crossover_views vs crossover on Genome copies.

TEST(CrossoverViews, MatchesCrossoverOnGenomes)
{
    const auto space = mixed_space();
    Rng setup{31};
    for (const auto kind :
         {CrossoverKind::single_point, CrossoverKind::two_point, CrossoverKind::uniform}) {
        for (int round = 0; round < 100; ++round) {
            const Genome pa = Genome::random(space, setup);
            const Genome pb = Genome::random(space, setup);
            std::vector<std::uint32_t> va = pa.genes(), vb = pb.genes();

            Rng scalar_rng{static_cast<std::uint64_t>(round + 1)};
            Rng view_rng{static_cast<std::uint64_t>(round + 1)};
            const auto [ca, cb] = crossover(pa, pb, kind, scalar_rng);
            crossover_views(va, vb, kind, view_rng);

            EXPECT_EQ(ca.genes(), va);
            EXPECT_EQ(cb.genes(), vb);
            EXPECT_EQ(scalar_rng.state(), view_rng.state());
        }
    }
}

// ---------------------------------------------------------------------------
// BreedContext::mutate vs the free mutate(): identical genes, counts, stats
// and RNG consumption across generations and hint shapes.

TEST(BreedContextMutate, MatchesFreeMutateAcrossGenerations)
{
    for (const bool use_mixed : {false, true}) {
        const auto space = use_mixed ? mixed_space() : toy_space();
        for (const bool guided : {false, true}) {
            const HintSet hints = guided ? guided_hints(space) : HintSet::none(space);
            BreedContext breed_ctx{space, hints, 0.35};
            for (const std::size_t gen : {std::size_t{0}, std::size_t{1}, std::size_t{7}}) {
                breed_ctx.begin_generation(gen);
                MutationContext scalar_ctx{&space, &hints, 0.35, gen, nullptr};
                MutationStats scalar_stats, ctx_stats;
                scalar_ctx.stats = &scalar_stats;

                Rng setup{gen * 1000 + (guided ? 1 : 0) + (use_mixed ? 2 : 0) + 5};
                Rng scalar_rng{404}, ctx_rng{404};
                for (int round = 0; round < 200; ++round) {
                    Genome a = Genome::random(space, setup);
                    Genome b = a;
                    const auto want = mutate(a, scalar_ctx, scalar_rng);
                    const auto got = breed_ctx.mutate(b, ctx_rng, &ctx_stats);
                    ASSERT_EQ(want, got);
                    ASSERT_EQ(a.genes(), b.genes());
                }
                EXPECT_EQ(scalar_rng.state(), ctx_rng.state());
                expect_same_stats(scalar_stats, ctx_stats);
            }
        }
    }
}

TEST(BreedContextMutate, RejectsIncompatibleGenome)
{
    const auto space = toy_space();
    const HintSet hints = HintSet::none(space);
    BreedContext ctx{space, hints, 0.1};
    Rng rng{1};
    Genome wrong{std::vector<std::uint32_t>{0, 0}};
    EXPECT_THROW(ctx.mutate(wrong, rng), std::invalid_argument);
}

TEST(BreedContext, HoistedProbsMatchPerCallComputation)
{
    const auto space = mixed_space();
    const HintSet hints = guided_hints(space);
    BreedContext ctx{space, hints, 0.2};
    for (const std::size_t gen : {std::size_t{0}, std::size_t{3}, std::size_t{11}}) {
        ctx.begin_generation(gen);
        const MutationContext scalar_ctx{&space, &hints, 0.2, gen, nullptr};
        const auto want = gene_mutation_probabilities(scalar_ctx);
        const auto got = ctx.gene_probs();
        ASSERT_EQ(want.size(), got.size());
        for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(want[i], got[i]);
    }
}

TEST(BreedContext, MemoizedDistributionIsBitIdenticalToFresh)
{
    const auto space = mixed_space();
    const HintSet hints = guided_hints(space);
    BreedContext ctx{space, hints, 0.2};

    // Two passes: the first fills the memo (misses), the second must hit it
    // and still return the bit-identical distribution.
    for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t p = 0; p < space.size(); ++p) {
            const std::size_t card = space[p].domain.cardinality();
            if (card < 2) continue;  // mutation never asks for these
            for (std::uint32_t current = 0; current < card; ++current) {
                const auto want =
                    value_distribution(space[p].domain, hints.param(p), hints.confidence(),
                                       current);
                const auto& got = ctx.distribution(p, current);
                ASSERT_EQ(want, got) << "param=" << p << " current=" << current;
            }
        }
    }
    EXPECT_GT(ctx.dist_memo_hits(), 0u);
    EXPECT_GT(ctx.dist_memo_misses(), 0u);
}

// ---------------------------------------------------------------------------
// BreedContext::breed vs the preserved scalar reference loop.

TEST(BreedPhase, DataOrientedMatchesScalarReference)
{
    const auto space = mixed_space();
    Rng setup{808};
    for (const bool guided : {false, true}) {
        const HintSet hints = guided ? guided_hints(space) : HintSet::none(space);
        for (const auto kind :
             {SelectionKind::rank, SelectionKind::tournament, SelectionKind::roulette}) {
            for (const auto cross : {CrossoverKind::single_point, CrossoverKind::two_point,
                                     CrossoverKind::uniform}) {
                for (const std::size_t pop_size : {std::size_t{9}, std::size_t{10}}) {
                    BreedConfig config;
                    config.selection = {kind, 1.8, 3};
                    config.crossover = cross;
                    config.crossover_rate = 0.85;
                    config.elitism = 2;
                    config.population_size = pop_size;

                    auto scalar_pop = random_population(space, pop_size, setup);
                    auto dataop_pop = scalar_pop;
                    const auto fitness = random_fitness(pop_size, setup, true);

                    BreedContext ctx{space, hints, 0.3};
                    Rng scalar_rng{99}, dataop_rng{99};
                    for (std::size_t gen = 0; gen < 5; ++gen) {
                        const auto scalar_stats = breed_population_scalar(
                            scalar_pop, fitness, config, space, hints, 0.3, gen,
                            scalar_rng, true);
                        ctx.begin_generation(gen);
                        const auto dataop_stats =
                            ctx.breed(dataop_pop, fitness, config, dataop_rng, true);

                        ASSERT_EQ(scalar_pop.size(), dataop_pop.size());
                        for (std::size_t i = 0; i < scalar_pop.size(); ++i)
                            ASSERT_EQ(scalar_pop[i].genes(), dataop_pop[i].genes())
                                << "member " << i << " gen " << gen;
                        EXPECT_EQ(scalar_stats.crossovers, dataop_stats.crossovers);
                        expect_same_stats(scalar_stats.mutation, dataop_stats.mutation);
                    }
                    EXPECT_EQ(scalar_rng.state(), dataop_rng.state());
                }
            }
        }
    }
}

TEST(BreedPhase, ValidatesInputs)
{
    const auto space = toy_space();
    const HintSet hints = HintSet::none(space);
    BreedContext ctx{space, hints, 0.1};
    Rng rng{1};
    BreedConfig config;
    config.population_size = 4;
    config.elitism = 4;
    auto population = random_population(space, 4, rng);
    const std::vector<double> fitness(4, 1.0);
    EXPECT_THROW(ctx.breed(population, fitness, config, rng, false), std::invalid_argument);
    config.elitism = 1;
    config.population_size = 5;
    EXPECT_THROW(ctx.breed(population, fitness, config, rng, false), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Full-engine equivalence: GaConfig::scalar_breed flips the implementation,
// never the results.

void expect_identical_runs(const RunResult& a, const RunResult& b)
{
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_EQ(a.history[i].best, b.history[i].best);
        EXPECT_EQ(a.history[i].mean, b.history[i].mean);
        EXPECT_EQ(a.history[i].worst, b.history[i].worst);
        EXPECT_EQ(a.history[i].best_so_far, b.history[i].best_so_far);
        EXPECT_EQ(a.history[i].distinct_evals, b.history[i].distinct_evals);
    }
    EXPECT_EQ(a.best_genome.genes(), b.best_genome.genes());
    EXPECT_EQ(a.best_eval.value, b.best_eval.value);
    EXPECT_EQ(a.distinct_evals, b.distinct_evals);
    ASSERT_EQ(a.final_population.size(), b.final_population.size());
    for (std::size_t i = 0; i < a.final_population.size(); ++i)
        EXPECT_EQ(a.final_population[i].genes(), b.final_population[i].genes());
    EXPECT_EQ(a.final_rng_state, b.final_rng_state);
}

TEST(GaEngine, ScalarBreedFlagIsBitExact)
{
    const auto space = toy_space();
    for (const bool guided : {false, true}) {
        const HintSet hints = guided ? guided_hints(space) : HintSet::none(space);
        for (const auto kind :
             {SelectionKind::rank, SelectionKind::tournament, SelectionKind::roulette}) {
            GaConfig cfg;
            cfg.population_size = 8;
            cfg.generations = 25;
            cfg.selection.kind = kind;
            cfg.seed = 7;

            GaConfig scalar_cfg = cfg;
            scalar_cfg.scalar_breed = true;
            const GaEngine dataop{space, cfg, Direction::maximize, sum_eval, hints};
            const GaEngine scalar{space, scalar_cfg, Direction::maximize, sum_eval, hints};
            expect_identical_runs(dataop.run(), scalar.run());
        }
    }
}

TEST(GaEngine, ScalarBreedFlagIsBitExactWithParallelEval)
{
    const auto space = toy_space();
    GaConfig cfg;
    cfg.population_size = 10;
    cfg.generations = 20;
    cfg.eval_workers = 4;
    cfg.seed = 13;
    GaConfig scalar_cfg = cfg;
    scalar_cfg.scalar_breed = true;
    const HintSet hints = guided_hints(space);
    const GaEngine dataop{space, cfg, Direction::maximize, sum_eval, hints};
    const GaEngine scalar{space, scalar_cfg, Direction::maximize, sum_eval, hints};
    expect_identical_runs(dataop.run(), scalar.run());
}

TEST(GaEngine, ScalarBreedIsExcludedFromConfigFingerprint)
{
    const auto space = toy_space();
    GaConfig cfg;
    GaConfig scalar_cfg = cfg;
    scalar_cfg.scalar_breed = true;
    const GaEngine dataop{space, cfg, Direction::maximize, sum_eval, HintSet::none(space)};
    const GaEngine scalar{space, scalar_cfg, Direction::maximize, sum_eval,
                          HintSet::none(space)};
    EXPECT_EQ(dataop.config_fingerprint(1), scalar.config_fingerprint(1));
}

// ---------------------------------------------------------------------------
// DiversityCounter vs the O(pop^2) pairwise definition.

double brute_force_diversity(const std::vector<Genome>& population)
{
    if (population.size() < 2) return 0.0;
    const std::size_t genes = population.front().genes().size();
    if (genes == 0) return 0.0;
    double total = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < population.size(); ++i) {
        for (std::size_t j = i + 1; j < population.size(); ++j) {
            std::size_t differing = 0;
            for (std::size_t g = 0; g < genes; ++g)
                if (population[i].genes()[g] != population[j].genes()[g]) ++differing;
            total += static_cast<double>(differing) / static_cast<double>(genes);
            ++pairs;
        }
    }
    return total / static_cast<double>(pairs);
}

TEST(DiversityCounter, MatchesPairwiseDefinition)
{
    const auto space = mixed_space();
    Rng rng{606};
    DiversityCounter counter;
    for (const std::size_t n : {std::size_t{2}, std::size_t{3}, std::size_t{10},
                                std::size_t{33}}) {
        const auto population = random_population(space, n, rng);
        EXPECT_NEAR(counter.measure(population), brute_force_diversity(population), 1e-12)
            << "n=" << n;
    }
}

TEST(DiversityCounter, EdgeCases)
{
    const auto space = toy_space();
    DiversityCounter counter;
    EXPECT_EQ(counter.measure({}), 0.0);

    Rng rng{3};
    const auto one = random_population(space, 1, rng);
    EXPECT_EQ(counter.measure(one), 0.0);

    std::vector<Genome> clones(5, Genome{std::vector<std::uint32_t>{1, 2, 3, 4}});
    EXPECT_EQ(counter.measure(clones), 0.0);

    std::vector<Genome> distinct{Genome{std::vector<std::uint32_t>{0, 0, 0, 0}},
                                 Genome{std::vector<std::uint32_t>{1, 1, 1, 1}},
                                 Genome{std::vector<std::uint32_t>{2, 2, 2, 2}}};
    EXPECT_EQ(counter.measure(distinct), 1.0);
}

TEST(DiversityCounter, IncrementalAddMatchesOneShot)
{
    const auto space = mixed_space();
    Rng rng{71};
    const auto population = random_population(space, 12, rng);

    DiversityCounter one_shot;
    const double want = one_shot.measure(population);

    DiversityCounter incremental;
    incremental.reset(space.size());
    for (const auto& g : population) incremental.add(g);
    EXPECT_EQ(incremental.value(), want);
}

}  // namespace
}  // namespace nautilus
