#include "core/parameter.hpp"

#include <gtest/gtest.h>

namespace nautilus {
namespace {

TEST(ParamDomain, IntRangeBasics)
{
    const auto d = ParamDomain::int_range(2, 10, 2);
    EXPECT_EQ(d.kind(), DomainKind::integer_range);
    EXPECT_EQ(d.cardinality(), 5u);
    EXPECT_TRUE(d.ordered());
    EXPECT_DOUBLE_EQ(d.numeric_value(0), 2.0);
    EXPECT_DOUBLE_EQ(d.numeric_value(4), 10.0);
    EXPECT_EQ(d.value_name(1), "4");
}

TEST(ParamDomain, IntRangeWithNonAlignedEnd)
{
    // hi not on the step grid: last value is the largest <= hi.
    const auto d = ParamDomain::int_range(0, 7, 3);  // 0, 3, 6
    EXPECT_EQ(d.cardinality(), 3u);
    EXPECT_DOUBLE_EQ(d.numeric_value(2), 6.0);
}

TEST(ParamDomain, IntRangeSingleValue)
{
    const auto d = ParamDomain::int_range(5, 5);
    EXPECT_EQ(d.cardinality(), 1u);
    EXPECT_DOUBLE_EQ(d.numeric_value(0), 5.0);
}

TEST(ParamDomain, IntRangeNegativeValues)
{
    const auto d = ParamDomain::int_range(-4, 4, 4);
    EXPECT_EQ(d.cardinality(), 3u);
    EXPECT_DOUBLE_EQ(d.numeric_value(0), -4.0);
    EXPECT_EQ(d.value_name(0), "-4");
}

TEST(ParamDomain, IntRangeValidation)
{
    EXPECT_THROW(ParamDomain::int_range(3, 1), std::invalid_argument);
    EXPECT_THROW(ParamDomain::int_range(1, 3, 0), std::invalid_argument);
    EXPECT_THROW(ParamDomain::int_range(1, 3, -1), std::invalid_argument);
}

TEST(ParamDomain, Pow2Basics)
{
    const auto d = ParamDomain::pow2(3, 7);
    EXPECT_EQ(d.kind(), DomainKind::pow2_range);
    EXPECT_EQ(d.cardinality(), 5u);
    EXPECT_DOUBLE_EQ(d.numeric_value(0), 8.0);
    EXPECT_DOUBLE_EQ(d.numeric_value(4), 128.0);
    EXPECT_EQ(d.value_name(2), "32");
}

TEST(ParamDomain, Pow2Validation)
{
    EXPECT_THROW(ParamDomain::pow2(5, 3), std::invalid_argument);
    EXPECT_THROW(ParamDomain::pow2(-1, 3), std::invalid_argument);
    EXPECT_THROW(ParamDomain::pow2(0, 63), std::invalid_argument);
}

TEST(ParamDomain, CategoricalBasics)
{
    const auto d = ParamDomain::categorical({"a", "b", "c"});
    EXPECT_EQ(d.kind(), DomainKind::categorical);
    EXPECT_EQ(d.cardinality(), 3u);
    EXPECT_FALSE(d.ordered());
    EXPECT_EQ(d.value_name(1), "b");
    EXPECT_DOUBLE_EQ(d.numeric_value(2), 2.0);
}

TEST(ParamDomain, CategoricalOrderedFlag)
{
    const auto d = ParamDomain::categorical({"slow", "fast"}, /*ordered=*/true);
    EXPECT_TRUE(d.ordered());
}

TEST(ParamDomain, CategoricalValidation)
{
    EXPECT_THROW(ParamDomain::categorical({}), std::invalid_argument);
    EXPECT_THROW(ParamDomain::categorical({"x", "x"}), std::invalid_argument);
}

TEST(ParamDomain, BooleanBasics)
{
    const auto d = ParamDomain::boolean();
    EXPECT_EQ(d.cardinality(), 2u);
    EXPECT_EQ(d.value_name(0), "false");
    EXPECT_EQ(d.value_name(1), "true");
    EXPECT_TRUE(d.ordered());
}

TEST(ParamDomain, OutOfRangeIndexThrows)
{
    const auto d = ParamDomain::int_range(0, 3);
    EXPECT_THROW(d.numeric_value(4), std::out_of_range);
    EXPECT_THROW(d.value_name(4), std::out_of_range);
}

TEST(ParamDomain, NearestIndexExact)
{
    const auto d = ParamDomain::int_range(0, 10, 2);
    EXPECT_EQ(d.nearest_index(6.0), 3u);
}

TEST(ParamDomain, NearestIndexRoundsToClosest)
{
    const auto d = ParamDomain::pow2(0, 4);  // 1 2 4 8 16
    EXPECT_EQ(d.nearest_index(5.0), 2u);     // closer to 4
    EXPECT_EQ(d.nearest_index(7.0), 3u);     // closer to 8
    EXPECT_EQ(d.nearest_index(1000.0), 4u);  // clamps to max
    EXPECT_EQ(d.nearest_index(-5.0), 0u);    // clamps to min
}

TEST(ParamDomain, IndexOfFindsByName)
{
    const auto d = ParamDomain::categorical({"rr", "wf"});
    EXPECT_EQ(d.index_of("wf"), 1u);
    EXPECT_FALSE(d.index_of("nope").has_value());
    const auto i = ParamDomain::int_range(1, 3);
    EXPECT_EQ(i.index_of("2"), 1u);
}

TEST(ParameterSpace, AddAndLookup)
{
    ParameterSpace space;
    EXPECT_EQ(space.add("a", ParamDomain::boolean()), 0u);
    EXPECT_EQ(space.add("b", ParamDomain::int_range(0, 4)), 1u);
    EXPECT_EQ(space.size(), 2u);
    EXPECT_EQ(space.index_of("b"), 1u);
    EXPECT_FALSE(space.index_of("c").has_value());
    EXPECT_EQ(space[1].name, "b");
}

TEST(ParameterSpace, RejectsDuplicatesAndEmptyNames)
{
    ParameterSpace space;
    space.add("a", ParamDomain::boolean());
    EXPECT_THROW(space.add("a", ParamDomain::boolean()), std::invalid_argument);
    EXPECT_THROW(space.add("", ParamDomain::boolean()), std::invalid_argument);
}

TEST(ParameterSpace, Cardinality)
{
    ParameterSpace space;
    EXPECT_DOUBLE_EQ(space.cardinality(), 0.0);
    space.add("a", ParamDomain::boolean());
    space.add("b", ParamDomain::int_range(0, 4));
    EXPECT_DOUBLE_EQ(space.cardinality(), 10.0);
    EXPECT_EQ(space.exact_cardinality(), 10u);
}

TEST(ParameterSpace, ExactCardinalityOverflow)
{
    ParameterSpace space;
    for (int i = 0; i < 11; ++i)
        space.add("p" + std::to_string(i), ParamDomain::pow2(0, 62));
    EXPECT_FALSE(space.exact_cardinality().has_value());
    EXPECT_GT(space.cardinality(), 2e19);  // beyond size_t
}

TEST(ParameterSpace, AtOutOfRange)
{
    ParameterSpace space;
    space.add("a", ParamDomain::boolean());
    EXPECT_THROW(space.at(1), std::out_of_range);
}

TEST(ParameterSpace, RangeBasedIteration)
{
    ParameterSpace space;
    space.add("a", ParamDomain::boolean());
    space.add("b", ParamDomain::boolean());
    int count = 0;
    for (const Parameter& p : space) {
        EXPECT_FALSE(p.name.empty());
        ++count;
    }
    EXPECT_EQ(count, 2);
}

class DomainCardinalitySweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t, std::int64_t>> {
};

TEST_P(DomainCardinalitySweep, ValuesMatchArithmeticSequence)
{
    const auto [lo, hi, step] = GetParam();
    const auto d = ParamDomain::int_range(lo, hi, step);
    for (std::size_t i = 0; i < d.cardinality(); ++i) {
        const double v = d.numeric_value(i);
        EXPECT_DOUBLE_EQ(v, static_cast<double>(lo + static_cast<std::int64_t>(i) * step));
        EXPECT_LE(v, static_cast<double>(hi));
    }
}

INSTANTIATE_TEST_SUITE_P(Ranges, DomainCardinalitySweep,
                         ::testing::Values(std::make_tuple(0, 10, 1),
                                           std::make_tuple(-5, 5, 2),
                                           std::make_tuple(8, 26, 2),
                                           std::make_tuple(1, 100, 7),
                                           std::make_tuple(3, 3, 1)));

}  // namespace
}  // namespace nautilus
