#include "core/fault.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/evaluator.hpp"
#include "core/parameter.hpp"

namespace nautilus {
namespace {

ParameterSpace tiny_space()
{
    ParameterSpace space;
    space.add("a", ParamDomain::int_range(0, 7));
    space.add("b", ParamDomain::int_range(0, 7));
    return space;
}

Genome make_genome(std::uint32_t a, std::uint32_t b)
{
    return Genome{std::vector<std::uint32_t>{a, b}};
}

Evaluation sum_eval(const Genome& g)
{
    return {true, static_cast<double>(g.gene(0) + g.gene(1))};
}

TEST(RetryPolicy, ValidationCatchesBadSettings)
{
    RetryPolicy p;
    p.max_attempts = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = RetryPolicy{};
    p.backoff_ms = -1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = RetryPolicy{};
    p.backoff_multiplier = 0.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = RetryPolicy{};
    p.jitter = 1.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = RetryPolicy{};
    p.timeout_seconds = -2.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    EXPECT_NO_THROW(RetryPolicy{}.validate());
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndFirstAttemptIsFree)
{
    RetryPolicy p;
    p.max_attempts = 4;
    p.backoff_ms = 10.0;
    p.backoff_multiplier = 2.0;
    EXPECT_DOUBLE_EQ(p.backoff_before(1, 42), 0.0);
    EXPECT_DOUBLE_EQ(p.backoff_before(2, 42), 10.0);
    EXPECT_DOUBLE_EQ(p.backoff_before(3, 42), 20.0);
    EXPECT_DOUBLE_EQ(p.backoff_before(4, 42), 40.0);
}

TEST(RetryPolicy, JitterIsDeterministicPerKeyAndBounded)
{
    RetryPolicy p;
    p.max_attempts = 3;
    p.backoff_ms = 100.0;
    p.jitter = 0.25;
    const double a1 = p.backoff_before(2, 1);
    const double a2 = p.backoff_before(2, 1);
    EXPECT_DOUBLE_EQ(a1, a2);  // same (key, attempt) -> same jitter
    EXPECT_GE(a1, 75.0);
    EXPECT_LE(a1, 125.0);
    // Different keys draw different jitter (overwhelmingly likely).
    bool any_different = false;
    for (std::uint64_t key = 0; key < 16; ++key)
        if (p.backoff_before(2, key) != a1) any_different = true;
    EXPECT_TRUE(any_different);
}

TEST(FaultTolerantEvaluator, PassesThroughWhenNothingFails)
{
    FaultTolerantEvaluator<Evaluation> guard{sum_eval, FaultPolicy{}, Evaluation{false, 0.0}};
    const Genome g = make_genome(3, 4);
    EvalOutcome out;
    const Evaluation e = guard.evaluate(g, &out);
    EXPECT_TRUE(e.feasible);
    EXPECT_DOUBLE_EQ(e.value, 7.0);
    EXPECT_EQ(out.status, EvalStatus::ok);
    EXPECT_EQ(out.attempts, 1u);
    EXPECT_FALSE(out.penalized);
    EXPECT_EQ(guard.counters().attempts, 1u);
    EXPECT_EQ(guard.counters().retries, 0u);
}

TEST(FaultTolerantEvaluator, RetriesTransientFailuresToSuccess)
{
    std::atomic<int> calls{0};
    const auto flaky = [&](const Genome& g) {
        if (calls.fetch_add(1) < 2) throw std::runtime_error("transient");
        return sum_eval(g);
    };
    FaultPolicy policy;
    policy.retry.max_attempts = 3;
    FaultTolerantEvaluator<Evaluation> guard{flaky, policy, Evaluation{false, 0.0}};
    EvalOutcome out;
    const Evaluation e = guard.evaluate(make_genome(1, 1), &out);
    EXPECT_DOUBLE_EQ(e.value, 2.0);
    EXPECT_EQ(out.status, EvalStatus::ok);
    EXPECT_EQ(out.attempts, 3u);
    const FaultCounters c = guard.counters();
    EXPECT_EQ(c.attempts, 3u);
    EXPECT_EQ(c.retries, 2u);
    EXPECT_EQ(c.failures, 2u);
    EXPECT_EQ(c.quarantined, 0u);
}

TEST(FaultTolerantEvaluator, RethrowsWhenNotTolerant)
{
    const auto broken = [](const Genome&) -> Evaluation {
        throw std::runtime_error("dead tool");
    };
    FaultPolicy policy;
    policy.retry.max_attempts = 2;
    FaultTolerantEvaluator<Evaluation> guard{broken, policy, Evaluation{false, 0.0}};
    EXPECT_THROW(guard.evaluate(make_genome(0, 0)), std::runtime_error);
    const FaultCounters c = guard.counters();
    EXPECT_EQ(c.attempts, 2u);
    EXPECT_EQ(c.retries, 1u);
    EXPECT_EQ(c.failures, 2u);
    EXPECT_EQ(c.quarantined, 0u);
    EXPECT_EQ(c.penalties, 0u);
}

TEST(FaultTolerantEvaluator, QuarantinesAndServesPenaltyWhenTolerant)
{
    const auto broken = [](const Genome&) -> Evaluation {
        throw std::runtime_error("dead tool");
    };
    FaultPolicy policy;
    policy.retry.max_attempts = 3;
    policy.tolerate_failures = true;
    FaultTolerantEvaluator<Evaluation> guard{broken, policy, Evaluation{false, -1.0}};
    const Genome g = make_genome(5, 5);
    EvalOutcome out;
    const Evaluation e = guard.evaluate(g, &out);
    EXPECT_FALSE(e.feasible);
    EXPECT_DOUBLE_EQ(e.value, -1.0);
    EXPECT_TRUE(out.penalized);
    EXPECT_EQ(out.status, EvalStatus::failed);
    EXPECT_EQ(out.attempts, 3u);
    EXPECT_EQ(out.error, "dead tool");
    const FaultCounters c = guard.counters();
    EXPECT_EQ(c.quarantined, 1u);
    EXPECT_EQ(c.penalties, 1u);
    ASSERT_EQ(guard.quarantined_keys().size(), 1u);
    EXPECT_EQ(guard.quarantined_keys()[0], g.key());
    // The recorded outcome is queryable afterwards.
    const auto recorded = guard.outcome_for(g);
    ASSERT_TRUE(recorded.has_value());
    EXPECT_TRUE(recorded->penalized);
}

TEST(FaultTolerantEvaluator, WatchdogConvertsHangsToTimeouts)
{
    const auto hung = [](const Genome&) -> Evaluation {
        std::this_thread::sleep_for(std::chrono::milliseconds{250});
        return {true, 1.0};
    };
    FaultPolicy policy;
    policy.retry.max_attempts = 1;
    policy.retry.timeout_seconds = 0.02;
    policy.tolerate_failures = true;
    FaultTolerantEvaluator<Evaluation> guard{hung, policy, Evaluation{false, 0.0}};
    EvalOutcome out;
    const Evaluation e = guard.evaluate(make_genome(2, 2), &out);
    EXPECT_FALSE(e.feasible);
    EXPECT_EQ(out.status, EvalStatus::timed_out);
    EXPECT_EQ(guard.counters().timeouts, 1u);
    EXPECT_EQ(guard.counters().quarantined, 1u);
}

TEST(FaultTolerantEvaluator, WatchdogLetsFastEvaluationsThrough)
{
    FaultPolicy policy;
    policy.retry.timeout_seconds = 5.0;
    FaultTolerantEvaluator<Evaluation> guard{sum_eval, policy, Evaluation{false, 0.0}};
    const Evaluation e = guard.evaluate(make_genome(6, 1));
    EXPECT_TRUE(e.feasible);
    EXPECT_DOUBLE_EQ(e.value, 7.0);
    EXPECT_EQ(guard.counters().timeouts, 0u);
}

TEST(FaultTolerantEvaluator, RestoreRoundTripsCountersAndQuarantine)
{
    FaultTolerantEvaluator<Evaluation> guard{sum_eval, FaultPolicy{}, Evaluation{false, 0.0}};
    FaultCounters c;
    c.attempts = 10;
    c.retries = 3;
    c.failures = 2;
    c.timeouts = 1;
    c.quarantined = 1;
    c.penalties = 4;
    const std::vector<std::uint64_t> quarantine{123u, 456u};
    guard.restore(quarantine, c);
    EXPECT_EQ(guard.counters(), c);
    EXPECT_EQ(guard.quarantined_keys(), quarantine);
}

TEST(FaultTolerantEvaluator, InvariantAttemptsEqualsCallsPlusRetries)
{
    // Under a cache, every miss is one guarded call; with a 50% transient
    // failure pattern the attempt accounting must close exactly.
    std::atomic<int> calls{0};
    const auto sometimes = [&](const Genome& g) {
        if (calls.fetch_add(1) % 2 == 0) throw std::runtime_error("flaky");
        return sum_eval(g);
    };
    FaultPolicy policy;
    policy.retry.max_attempts = 4;
    policy.tolerate_failures = true;
    FaultTolerantEvaluator<Evaluation> guard{sometimes, policy, Evaluation{false, 0.0}};
    CachingEvaluator cache{[&guard](const Genome& g) { return guard.evaluate(g); }};

    const auto space = tiny_space();
    std::size_t guarded_calls = 0;
    for (std::uint32_t a = 0; a < 8; ++a) {
        for (std::uint32_t b = 0; b < 8; ++b) {
            cache.evaluate(make_genome(a, b));
            cache.evaluate(make_genome(a, b));  // hit: no guarded call
            ++guarded_calls;
        }
    }
    const FaultCounters c = guard.counters();
    EXPECT_EQ(cache.distinct_evaluations(), guarded_calls);
    EXPECT_EQ(c.attempts, guarded_calls + c.retries);
}

}  // namespace
}  // namespace nautilus
