#include "core/fitness.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nautilus {
namespace {

TEST(Direction, SignAndName)
{
    EXPECT_DOUBLE_EQ(direction_sign(Direction::maximize), 1.0);
    EXPECT_DOUBLE_EQ(direction_sign(Direction::minimize), -1.0);
    EXPECT_STREQ(direction_name(Direction::maximize), "maximize");
    EXPECT_STREQ(direction_name(Direction::minimize), "minimize");
}

TEST(Direction, NoWorse)
{
    EXPECT_TRUE(no_worse(5.0, 3.0, Direction::maximize));
    EXPECT_FALSE(no_worse(2.0, 3.0, Direction::maximize));
    EXPECT_TRUE(no_worse(3.0, 3.0, Direction::maximize));
    EXPECT_TRUE(no_worse(2.0, 3.0, Direction::minimize));
    EXPECT_FALSE(no_worse(5.0, 3.0, Direction::minimize));
    EXPECT_TRUE(no_worse(3.0, 3.0, Direction::minimize));
}

TEST(Direction, BetterOf)
{
    EXPECT_DOUBLE_EQ(better_of(5.0, 3.0, Direction::maximize), 5.0);
    EXPECT_DOUBLE_EQ(better_of(5.0, 3.0, Direction::minimize), 3.0);
}

TEST(Direction, WorstValueIsBeatenByAnything)
{
    EXPECT_TRUE(no_worse(-1e300, worst_value(Direction::maximize), Direction::maximize));
    EXPECT_TRUE(no_worse(1e300, worst_value(Direction::minimize), Direction::minimize));
}

TEST(FitnessMapper, MaximizeKeepsValue)
{
    const FitnessMapper m{Direction::maximize};
    EXPECT_DOUBLE_EQ(m.fitness({true, 42.0}), 42.0);
    EXPECT_DOUBLE_EQ(m.fitness({true, -1.0}), -1.0);
}

TEST(FitnessMapper, MinimizeNegatesValue)
{
    const FitnessMapper m{Direction::minimize};
    EXPECT_DOUBLE_EQ(m.fitness({true, 42.0}), -42.0);
    EXPECT_GT(m.fitness({true, 1.0}), m.fitness({true, 2.0}));
}

TEST(FitnessMapper, InfeasibleIsWorstPossible)
{
    for (Direction dir : {Direction::maximize, Direction::minimize}) {
        const FitnessMapper m{dir};
        const double inf = m.fitness({false, 0.0});
        EXPECT_TRUE(std::isinf(inf));
        EXPECT_LT(inf, m.fitness({true, -1e30}));
    }
}

}  // namespace
}  // namespace nautilus
