#include "core/selection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace nautilus {
namespace {

constexpr double k_inf = std::numeric_limits<double>::infinity();

std::vector<int> tally(std::span<const double> fitness, const SelectionConfig& cfg,
                       int draws, std::uint64_t seed)
{
    Rng rng{seed};
    std::vector<int> counts(fitness.size(), 0);
    for (int i = 0; i < draws; ++i) ++counts[select_parent(fitness, cfg, rng)];
    return counts;
}

TEST(RankOrder, SortsBestFirstStably)
{
    const std::vector<double> fitness{1.0, 5.0, 3.0, 5.0};
    const auto order = rank_order(fitness);
    EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 2, 0}));
}

TEST(SelectParent, EmptyPopulationThrows)
{
    Rng rng{1};
    const std::vector<double> empty;
    EXPECT_THROW(select_parent(empty, SelectionConfig{}, rng), std::invalid_argument);
}

TEST(SelectParent, BadRankPressureThrows)
{
    Rng rng{1};
    const std::vector<double> fitness{1.0, 2.0};
    SelectionConfig cfg;
    cfg.rank_pressure = 0.5;
    EXPECT_THROW(select_parent(fitness, cfg, rng), std::invalid_argument);
    cfg.rank_pressure = 2.5;
    EXPECT_THROW(select_parent(fitness, cfg, rng), std::invalid_argument);
}

TEST(SelectParent, SingleMemberAlwaysSelected)
{
    Rng rng{2};
    const std::vector<double> fitness{7.0};
    for (auto kind : {SelectionKind::rank, SelectionKind::tournament,
                      SelectionKind::roulette}) {
        SelectionConfig cfg;
        cfg.kind = kind;
        EXPECT_EQ(select_parent(fitness, cfg, rng), 0u);
    }
}

TEST(SelectParent, RankPrefersBetterIndividuals)
{
    const std::vector<double> fitness{1.0, 10.0, 5.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::rank;
    cfg.rank_pressure = 1.8;
    const auto counts = tally(fitness, cfg, 30000, 3);
    EXPECT_GT(counts[1], counts[2]);
    EXPECT_GT(counts[2], counts[0]);
    EXPECT_GT(counts[0], 0);  // worst still selectable
}

TEST(SelectParent, RankPressureOneIsUniform)
{
    const std::vector<double> fitness{1.0, 10.0, 5.0, 2.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::rank;
    cfg.rank_pressure = 1.0;
    const auto counts = tally(fitness, cfg, 40000, 4);
    for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(SelectParent, TournamentPrefersBetterIndividuals)
{
    const std::vector<double> fitness{1.0, 10.0, 5.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::tournament;
    cfg.tournament_size = 3;
    const auto counts = tally(fitness, cfg, 30000, 5);
    EXPECT_GT(counts[1], counts[2]);
    EXPECT_GT(counts[2], counts[0]);
}

TEST(SelectParent, LargerTournamentsAreGreedier)
{
    const std::vector<double> fitness{1.0, 2.0, 3.0, 4.0, 10.0};
    SelectionConfig small;
    small.kind = SelectionKind::tournament;
    small.tournament_size = 2;
    SelectionConfig big = small;
    big.tournament_size = 5;
    const auto c_small = tally(fitness, small, 20000, 6);
    const auto c_big = tally(fitness, big, 20000, 6);
    EXPECT_GT(c_big[4], c_small[4]);
}

TEST(SelectParent, RoulettePrefersBetterIndividuals)
{
    const std::vector<double> fitness{0.0, 100.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::roulette;
    const auto counts = tally(fitness, cfg, 20000, 7);
    EXPECT_GT(counts[1], counts[0]);
    EXPECT_GT(counts[0], 1000);  // weak pressure keeps the worst in play
}

TEST(SelectParent, RouletteHandlesNegativeFitness)
{
    const std::vector<double> fitness{-500.0, -100.0, -300.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::roulette;
    const auto counts = tally(fitness, cfg, 30000, 8);
    EXPECT_GT(counts[1], counts[2]);
    EXPECT_GT(counts[2], counts[0]);
}

TEST(SelectParent, RouletteNeverPicksInfeasibleWhenFeasibleExists)
{
    const std::vector<double> fitness{-k_inf, 1.0, -k_inf, 2.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::roulette;
    const auto counts = tally(fitness, cfg, 5000, 9);
    EXPECT_EQ(counts[0], 0);
    EXPECT_EQ(counts[2], 0);
}

TEST(SelectParent, RouletteAllInfeasibleFallsBackToUniform)
{
    const std::vector<double> fitness{-k_inf, -k_inf, -k_inf};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::roulette;
    const auto counts = tally(fitness, cfg, 9000, 10);
    for (int c : counts) EXPECT_GT(c, 2000);
}

TEST(SelectParent, EqualFitnessIsRoughlyUniform)
{
    // Tournament and roulette treat ties symmetrically.  (Linear ranking
    // breaks ties by index, which is conventional but not uniform.)
    const std::vector<double> fitness{5.0, 5.0, 5.0, 5.0};
    for (auto kind : {SelectionKind::tournament, SelectionKind::roulette}) {
        SelectionConfig cfg;
        cfg.kind = kind;
        const auto counts = tally(fitness, cfg, 40000, 11);
        for (int c : counts) EXPECT_NEAR(c, 10000, 800) << selection_name(kind);
    }
}

TEST(SelectParent, EqualFitnessRankStillSelectsEveryone)
{
    const std::vector<double> fitness{5.0, 5.0, 5.0, 5.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::rank;
    const auto counts = tally(fitness, cfg, 40000, 12);
    for (int c : counts) EXPECT_GT(c, 500);
}

// --------------------------------------------------------------------------
// Chi-square goodness-of-fit: the observed pick frequencies must match the
// *intended* selection weights, not merely their ordering.  Seeds are fixed,
// so these are deterministic; the thresholds are the p = 0.001 critical
// values for the stated degrees of freedom.

double chi_square(std::span<const int> observed, std::span<const double> expected)
{
    double stat = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        if (expected[i] == 0.0) continue;  // asserted exactly by the caller
        const double diff = static_cast<double>(observed[i]) - expected[i];
        stat += diff * diff / expected[i];
    }
    return stat;
}

TEST(SelectParent, RankFrequenciesMatchLinearRankingWeights)
{
    const std::vector<double> fitness{3.0, 9.0, 1.0, 7.0, 5.0};
    const double pressure = 1.8;
    SelectionConfig cfg;
    cfg.kind = SelectionKind::rank;
    cfg.rank_pressure = pressure;
    const int draws = 60000;
    const auto counts = tally(fitness, cfg, draws, 21);

    // Member at rank r (0 = best) gets weight pressure + (2 - 2*pressure)*r/(n-1).
    const auto order = rank_order(fitness);
    const std::size_t n = fitness.size();
    std::vector<double> expected(n, 0.0);
    double total = 0.0;
    std::vector<double> rank_weight(n);
    for (std::size_t r = 0; r < n; ++r) {
        rank_weight[r] =
            pressure + ((2.0 - pressure) - pressure) * static_cast<double>(r) /
                           static_cast<double>(n - 1);
        total += rank_weight[r];
    }
    for (std::size_t r = 0; r < n; ++r)
        expected[order[r]] = draws * rank_weight[r] / total;

    EXPECT_LT(chi_square(counts, expected), 18.47) << "df=4, p=0.001";
}

TEST(SelectParent, TournamentFrequenciesMatchOrderStatistics)
{
    // Distinct fitness values, so the winner is the unique best of k uniform
    // draws with replacement: P(rank r wins) = ((n-r)^k - (n-r-1)^k) / n^k.
    const std::vector<double> fitness{3.0, 9.0, 1.0, 7.0, 5.0, 11.0};
    const std::size_t k = 3;
    SelectionConfig cfg;
    cfg.kind = SelectionKind::tournament;
    cfg.tournament_size = k;
    const int draws = 60000;
    const auto counts = tally(fitness, cfg, draws, 22);

    const auto order = rank_order(fitness);
    const std::size_t n = fitness.size();
    std::vector<double> expected(n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
        const double survivors = static_cast<double>(n - r);
        const double p = (std::pow(survivors, static_cast<double>(k)) -
                          std::pow(survivors - 1.0, static_cast<double>(k))) /
                         std::pow(static_cast<double>(n), static_cast<double>(k));
        expected[order[r]] = draws * p;
    }

    EXPECT_LT(chi_square(counts, expected), 20.52) << "df=5, p=0.001";
}

TEST(SelectParent, RouletteFrequenciesMatchFloorShiftedWeights)
{
    // weight_i = (f_i - lo) + 0.45 * (hi - lo) for finite members, 0 for
    // infeasible ones (which must never be picked).
    const std::vector<double> fitness{2.0, 10.0, -k_inf, 6.0, 4.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::roulette;
    const int draws = 60000;
    const auto counts = tally(fitness, cfg, draws, 23);

    double lo = k_inf, hi = -k_inf;
    for (double f : fitness) {
        if (!std::isfinite(f)) continue;
        lo = std::min(lo, f);
        hi = std::max(hi, f);
    }
    const double floor_weight = (hi - lo) * 0.45;
    std::vector<double> expected(fitness.size(), 0.0);
    double total = 0.0;
    for (double f : fitness)
        if (std::isfinite(f)) total += (f - lo) + floor_weight;
    for (std::size_t i = 0; i < fitness.size(); ++i)
        if (std::isfinite(fitness[i]))
            expected[i] = draws * ((fitness[i] - lo) + floor_weight) / total;

    EXPECT_EQ(counts[2], 0);  // infeasible member is never selectable
    EXPECT_LT(chi_square(counts, expected), 16.27) << "df=3, p=0.001";
}

TEST(SelectionNames, Stable)
{
    EXPECT_STREQ(selection_name(SelectionKind::rank), "rank");
    EXPECT_STREQ(selection_name(SelectionKind::tournament), "tournament");
    EXPECT_STREQ(selection_name(SelectionKind::roulette), "roulette");
}

}  // namespace
}  // namespace nautilus
