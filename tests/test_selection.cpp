#include "core/selection.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace nautilus {
namespace {

constexpr double k_inf = std::numeric_limits<double>::infinity();

std::vector<int> tally(std::span<const double> fitness, const SelectionConfig& cfg,
                       int draws, std::uint64_t seed)
{
    Rng rng{seed};
    std::vector<int> counts(fitness.size(), 0);
    for (int i = 0; i < draws; ++i) ++counts[select_parent(fitness, cfg, rng)];
    return counts;
}

TEST(RankOrder, SortsBestFirstStably)
{
    const std::vector<double> fitness{1.0, 5.0, 3.0, 5.0};
    const auto order = rank_order(fitness);
    EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 2, 0}));
}

TEST(SelectParent, EmptyPopulationThrows)
{
    Rng rng{1};
    const std::vector<double> empty;
    EXPECT_THROW(select_parent(empty, SelectionConfig{}, rng), std::invalid_argument);
}

TEST(SelectParent, BadRankPressureThrows)
{
    Rng rng{1};
    const std::vector<double> fitness{1.0, 2.0};
    SelectionConfig cfg;
    cfg.rank_pressure = 0.5;
    EXPECT_THROW(select_parent(fitness, cfg, rng), std::invalid_argument);
    cfg.rank_pressure = 2.5;
    EXPECT_THROW(select_parent(fitness, cfg, rng), std::invalid_argument);
}

TEST(SelectParent, SingleMemberAlwaysSelected)
{
    Rng rng{2};
    const std::vector<double> fitness{7.0};
    for (auto kind : {SelectionKind::rank, SelectionKind::tournament,
                      SelectionKind::roulette}) {
        SelectionConfig cfg;
        cfg.kind = kind;
        EXPECT_EQ(select_parent(fitness, cfg, rng), 0u);
    }
}

TEST(SelectParent, RankPrefersBetterIndividuals)
{
    const std::vector<double> fitness{1.0, 10.0, 5.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::rank;
    cfg.rank_pressure = 1.8;
    const auto counts = tally(fitness, cfg, 30000, 3);
    EXPECT_GT(counts[1], counts[2]);
    EXPECT_GT(counts[2], counts[0]);
    EXPECT_GT(counts[0], 0);  // worst still selectable
}

TEST(SelectParent, RankPressureOneIsUniform)
{
    const std::vector<double> fitness{1.0, 10.0, 5.0, 2.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::rank;
    cfg.rank_pressure = 1.0;
    const auto counts = tally(fitness, cfg, 40000, 4);
    for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(SelectParent, TournamentPrefersBetterIndividuals)
{
    const std::vector<double> fitness{1.0, 10.0, 5.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::tournament;
    cfg.tournament_size = 3;
    const auto counts = tally(fitness, cfg, 30000, 5);
    EXPECT_GT(counts[1], counts[2]);
    EXPECT_GT(counts[2], counts[0]);
}

TEST(SelectParent, LargerTournamentsAreGreedier)
{
    const std::vector<double> fitness{1.0, 2.0, 3.0, 4.0, 10.0};
    SelectionConfig small;
    small.kind = SelectionKind::tournament;
    small.tournament_size = 2;
    SelectionConfig big = small;
    big.tournament_size = 5;
    const auto c_small = tally(fitness, small, 20000, 6);
    const auto c_big = tally(fitness, big, 20000, 6);
    EXPECT_GT(c_big[4], c_small[4]);
}

TEST(SelectParent, RoulettePrefersBetterIndividuals)
{
    const std::vector<double> fitness{0.0, 100.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::roulette;
    const auto counts = tally(fitness, cfg, 20000, 7);
    EXPECT_GT(counts[1], counts[0]);
    EXPECT_GT(counts[0], 1000);  // weak pressure keeps the worst in play
}

TEST(SelectParent, RouletteHandlesNegativeFitness)
{
    const std::vector<double> fitness{-500.0, -100.0, -300.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::roulette;
    const auto counts = tally(fitness, cfg, 30000, 8);
    EXPECT_GT(counts[1], counts[2]);
    EXPECT_GT(counts[2], counts[0]);
}

TEST(SelectParent, RouletteNeverPicksInfeasibleWhenFeasibleExists)
{
    const std::vector<double> fitness{-k_inf, 1.0, -k_inf, 2.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::roulette;
    const auto counts = tally(fitness, cfg, 5000, 9);
    EXPECT_EQ(counts[0], 0);
    EXPECT_EQ(counts[2], 0);
}

TEST(SelectParent, RouletteAllInfeasibleFallsBackToUniform)
{
    const std::vector<double> fitness{-k_inf, -k_inf, -k_inf};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::roulette;
    const auto counts = tally(fitness, cfg, 9000, 10);
    for (int c : counts) EXPECT_GT(c, 2000);
}

TEST(SelectParent, EqualFitnessIsRoughlyUniform)
{
    // Tournament and roulette treat ties symmetrically.  (Linear ranking
    // breaks ties by index, which is conventional but not uniform.)
    const std::vector<double> fitness{5.0, 5.0, 5.0, 5.0};
    for (auto kind : {SelectionKind::tournament, SelectionKind::roulette}) {
        SelectionConfig cfg;
        cfg.kind = kind;
        const auto counts = tally(fitness, cfg, 40000, 11);
        for (int c : counts) EXPECT_NEAR(c, 10000, 800) << selection_name(kind);
    }
}

TEST(SelectParent, EqualFitnessRankStillSelectsEveryone)
{
    const std::vector<double> fitness{5.0, 5.0, 5.0, 5.0};
    SelectionConfig cfg;
    cfg.kind = SelectionKind::rank;
    const auto counts = tally(fitness, cfg, 40000, 12);
    for (int c : counts) EXPECT_GT(c, 500);
}

TEST(SelectionNames, Stable)
{
    EXPECT_STREQ(selection_name(SelectionKind::rank), "rank");
    EXPECT_STREQ(selection_name(SelectionKind::tournament), "tournament");
    EXPECT_STREQ(selection_name(SelectionKind::roulette), "roulette");
}

}  // namespace
}  // namespace nautilus
