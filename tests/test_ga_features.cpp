// Tests for GA conveniences beyond the paper's core loop: early stopping
// (target / stall) and seeded initial populations.

#include <gtest/gtest.h>

#include "core/ga.hpp"

namespace nautilus {
namespace {

ParameterSpace feature_space()
{
    ParameterSpace space;
    for (int i = 0; i < 4; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 7));
    return space;
}

Evaluation sum_eval(const Genome& g)
{
    double v = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
    return {true, v};
}

TEST(GaEarlyStop, TargetValueStopsTheRun)
{
    const auto space = feature_space();
    GaConfig cfg;
    cfg.generations = 80;
    cfg.seed = 5;
    cfg.target_value = 20.0;  // easily reachable (max 28)
    const GaEngine engine{space, cfg, Direction::maximize, sum_eval,
                          HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_TRUE(r.hit_target);
    EXPECT_LT(r.history.size(), 80u);
    EXPECT_GE(r.history.back().best_so_far, 20.0);
}

TEST(GaEarlyStop, UnreachableTargetRunsAllGenerations)
{
    const auto space = feature_space();
    GaConfig cfg;
    cfg.generations = 10;
    cfg.target_value = 100.0;  // impossible (max 28)
    const GaEngine engine{space, cfg, Direction::maximize, sum_eval,
                          HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_FALSE(r.hit_target);
    EXPECT_EQ(r.history.size(), 10u);
}

TEST(GaEarlyStop, TargetIsDirectionAware)
{
    const auto space = feature_space();
    GaConfig cfg;
    cfg.generations = 80;
    cfg.seed = 6;
    cfg.target_value = 5.0;  // minimize: stop at <= 5
    const GaEngine engine{space, cfg, Direction::minimize, sum_eval,
                          HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_TRUE(r.hit_target);
    EXPECT_LE(r.best_eval.value, 5.0);
}

TEST(GaEarlyStop, StallCriterionTriggers)
{
    // Constant fitness: no improvement is possible after generation 0.
    const auto space = feature_space();
    GaConfig cfg;
    cfg.generations = 80;
    cfg.stall_generations = 5;
    const EvalFn flat = [](const Genome&) { return Evaluation{true, 1.0}; };
    const GaEngine engine{space, cfg, Direction::maximize, flat, HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_TRUE(r.stalled);
    EXPECT_FALSE(r.hit_target);
    EXPECT_LE(r.history.size(), 7u);  // gen 0 improves; 5 stalls follow
}

TEST(GaEarlyStop, StallDisabledByDefault)
{
    const auto space = feature_space();
    GaConfig cfg;
    cfg.generations = 12;
    const EvalFn flat = [](const Genome&) { return Evaluation{true, 1.0}; };
    const GaEngine engine{space, cfg, Direction::maximize, flat, HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_FALSE(r.stalled);
    EXPECT_EQ(r.history.size(), 12u);
}

TEST(GaSeeding, SeedsAppearInTheFirstGeneration)
{
    const auto space = feature_space();
    GaConfig cfg;
    cfg.generations = 1;
    GaEngine engine{space, cfg, Direction::maximize, sum_eval, HintSet::none(space)};
    const Genome best{{7, 7, 7, 7}};
    engine.seed_population({best});
    const RunResult r = engine.run(42);
    // With the optimum seeded, generation 0's best is already 28.
    EXPECT_DOUBLE_EQ(r.history.front().best, 28.0);
    EXPECT_EQ(r.best_genome, best);
}

TEST(GaSeeding, SeedingTheDefaultImprovesEarlyQuality)
{
    const auto space = feature_space();
    GaConfig cfg;
    cfg.generations = 2;
    cfg.seed = 9;
    const Genome decent{{6, 6, 6, 6}};

    GaEngine seeded{space, cfg, Direction::maximize, sum_eval, HintSet::none(space)};
    seeded.seed_population({decent});
    const GaEngine unseeded{space, cfg, Direction::maximize, sum_eval,
                            HintSet::none(space)};
    EXPECT_GE(seeded.run(1).history.front().best, 24.0);
    // Unseeded generation-0 best of 10 random genomes is very unlikely to
    // reach 24 (P ~ tiny); compare deterministically on this seed.
    EXPECT_LT(unseeded.run(1).history.front().best, 24.0);
}

TEST(GaSeeding, RejectsIncompatibleSeeds)
{
    const auto space = feature_space();
    GaEngine engine{space, GaConfig{}, Direction::maximize, sum_eval,
                    HintSet::none(space)};
    EXPECT_THROW(engine.seed_population({Genome{{1, 2}}}), std::invalid_argument);
}

TEST(GaSeeding, ExcessSeedsAreTruncated)
{
    const auto space = feature_space();
    GaConfig cfg;
    GaEngine engine{space, cfg, Direction::maximize, sum_eval, HintSet::none(space)};
    std::vector<Genome> many(cfg.population_size + 5, Genome::zeros(space));
    engine.seed_population(many);
    EXPECT_EQ(engine.seeds().size(), cfg.population_size);
    EXPECT_NO_THROW(engine.run(1));
}

TEST(GaSeeding, EarlyStopPlusSeedFindsTargetImmediately)
{
    const auto space = feature_space();
    GaConfig cfg;
    cfg.generations = 80;
    cfg.target_value = 28.0;
    GaEngine engine{space, cfg, Direction::maximize, sum_eval, HintSet::none(space)};
    engine.seed_population({Genome{{7, 7, 7, 7}}});
    const RunResult r = engine.run(1);
    EXPECT_TRUE(r.hit_target);
    EXPECT_EQ(r.history.size(), 1u);
    EXPECT_EQ(r.distinct_evals, GaConfig{}.population_size);
}

}  // namespace
}  // namespace nautilus
