#include "core/local_search.hpp"

#include <gtest/gtest.h>

namespace nautilus {
namespace {

ParameterSpace ls_space()
{
    ParameterSpace space;
    for (int i = 0; i < 5; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 9));
    return space;
}

// Separable maximization objective; optimum 45.
Evaluation sum_eval(const Genome& g)
{
    double v = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
    return {true, v};
}

// Deceptive objective with a local optimum plateau at all-zeros.
Evaluation deceptive_eval(const Genome& g)
{
    double v = 0.0;
    bool all_low = true;
    for (std::size_t i = 0; i < g.size(); ++i) {
        v += g.gene(i);
        all_low &= g.gene(i) <= 1;
    }
    if (all_low) return {true, 30.0};  // trap: decent score, far from optimum
    return {true, v};
}

HintSet up_hints(const ParameterSpace& space)
{
    HintSet hints = HintSet::none(space);
    for (std::size_t i = 0; i < space.size(); ++i) {
        hints.param(i).importance = 50.0;
        hints.param(i).bias = 0.8;
    }
    hints.set_confidence(0.8);
    return hints;
}

// ---- configs ----------------------------------------------------------------

TEST(AnnealingConfig, Validation)
{
    AnnealingConfig c;
    EXPECT_NO_THROW(c.validate());
    c.cooling = 1.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = AnnealingConfig{};
    c.max_distinct_evals = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = AnnealingConfig{};
    c.mutation_rate = 0.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = AnnealingConfig{};
    c.steps_per_temperature = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(HillClimbConfig, Validation)
{
    HillClimbConfig c;
    EXPECT_NO_THROW(c.validate());
    c.patience = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = HillClimbConfig{};
    c.mutation_rate = 1.5;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

// ---- simulated annealing -----------------------------------------------------

TEST(SimulatedAnnealing, RespectsEvaluationBudget)
{
    const auto space = ls_space();
    AnnealingConfig cfg;
    cfg.max_distinct_evals = 60;
    const SimulatedAnnealing sa{space, cfg, Direction::maximize, sum_eval,
                                HintSet::none(space)};
    const Curve c = sa.run(1);
    ASSERT_FALSE(c.empty());
    EXPECT_LE(c.final_evals(), 60.0);
}

TEST(SimulatedAnnealing, FindsGoodSolutionsOnSeparableObjective)
{
    const auto space = ls_space();
    AnnealingConfig cfg;
    cfg.max_distinct_evals = 400;
    const SimulatedAnnealing sa{space, cfg, Direction::maximize, sum_eval,
                                HintSet::none(space)};
    const MultiRunCurve multi = sa.run_many(10);
    EXPECT_GT(multi.mean_final_best(), 38.0);  // near the optimum of 45
}

TEST(SimulatedAnnealing, DeterministicPerSeed)
{
    const auto space = ls_space();
    AnnealingConfig cfg;
    cfg.max_distinct_evals = 100;
    const SimulatedAnnealing sa{space, cfg, Direction::maximize, sum_eval,
                                HintSet::none(space)};
    const Curve a = sa.run(9);
    const Curve b = sa.run(9);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_DOUBLE_EQ(a.final_best(), b.final_best());
}

TEST(SimulatedAnnealing, HintsAccelerateConvergence)
{
    const auto space = ls_space();
    AnnealingConfig cfg;
    cfg.max_distinct_evals = 300;
    const SimulatedAnnealing plain{space, cfg, Direction::maximize, sum_eval,
                                   HintSet::none(space)};
    const SimulatedAnnealing guided{space, cfg, Direction::maximize, sum_eval,
                                    up_hints(space)};
    const auto plain_conv = plain.run_many(12).evals_to_reach(43.0);
    const auto guided_conv = guided.run_many(12).evals_to_reach(43.0);
    EXPECT_GE(guided_conv.reached, plain_conv.reached);
    if (plain_conv.reached >= 6 && guided_conv.reached >= 6) {
        EXPECT_LT(guided_conv.mean_evals, plain_conv.mean_evals * 1.2);
    }
}

TEST(SimulatedAnnealing, MinimizationWorks)
{
    const auto space = ls_space();
    AnnealingConfig cfg;
    cfg.max_distinct_evals = 400;
    const SimulatedAnnealing sa{space, cfg, Direction::minimize, sum_eval,
                                HintSet::none(space)};
    EXPECT_LT(sa.run_many(8).mean_final_best(), 6.0);
}

TEST(SimulatedAnnealing, SurvivesFullyInfeasibleSpace)
{
    const auto space = ls_space();
    AnnealingConfig cfg;
    cfg.max_distinct_evals = 30;
    const EvalFn eval = [](const Genome&) { return Evaluation{false, 0.0}; };
    const SimulatedAnnealing sa{space, cfg, Direction::maximize, eval,
                                HintSet::none(space)};
    EXPECT_TRUE(sa.run(3).empty());
    EXPECT_THROW(sa.run_many(0), std::invalid_argument);
}

// ---- hill climbing -----------------------------------------------------------

TEST(HillClimber, RespectsEvaluationBudget)
{
    const auto space = ls_space();
    HillClimbConfig cfg;
    cfg.max_distinct_evals = 50;
    const HillClimber hc{space, cfg, Direction::maximize, sum_eval, HintSet::none(space)};
    const Curve c = hc.run(1);
    ASSERT_FALSE(c.empty());
    EXPECT_LE(c.final_evals(), 50.0);
}

TEST(HillClimber, ClimbsSeparableObjective)
{
    const auto space = ls_space();
    HillClimbConfig cfg;
    cfg.max_distinct_evals = 400;
    const HillClimber hc{space, cfg, Direction::maximize, sum_eval, HintSet::none(space)};
    EXPECT_GT(hc.run_many(10).mean_final_best(), 42.0);
}

TEST(HillClimber, RestartsEscapeTheTrap)
{
    const auto space = ls_space();
    HillClimbConfig cfg;
    cfg.max_distinct_evals = 600;
    cfg.patience = 25;
    const HillClimber hc{space, cfg, Direction::maximize, deceptive_eval,
                         HintSet::none(space)};
    // The trap plateau scores 30; the true optimum region scores up to 45.
    EXPECT_GT(hc.run_many(10).mean_final_best(), 38.0);
}

TEST(HillClimber, CurveIsMonotone)
{
    const auto space = ls_space();
    HillClimbConfig cfg;
    cfg.max_distinct_evals = 200;
    const HillClimber hc{space, cfg, Direction::maximize, sum_eval, HintSet::none(space)};
    const Curve c = hc.run(5);
    double prev = -1.0;
    for (const auto& p : c.points()) {
        EXPECT_GE(p.best, prev);
        prev = p.best;
    }
}

TEST(HillClimber, DeterministicPerSeed)
{
    const auto space = ls_space();
    HillClimbConfig cfg;
    cfg.max_distinct_evals = 120;
    const HillClimber hc{space, cfg, Direction::minimize, sum_eval, HintSet::none(space)};
    EXPECT_DOUBLE_EQ(hc.run(4).final_best(), hc.run(4).final_best());
}

TEST(HillClimber, GuidedBeatsUnguidedOnAverage)
{
    const auto space = ls_space();
    HillClimbConfig cfg;
    cfg.max_distinct_evals = 250;
    const HillClimber plain{space, cfg, Direction::maximize, sum_eval,
                            HintSet::none(space)};
    const HillClimber guided{space, cfg, Direction::maximize, sum_eval, up_hints(space)};
    EXPECT_GE(guided.run_many(12).mean_final_best() + 0.5,
              plain.run_many(12).mean_final_best());
}

TEST(LocalSearch, ConstructionValidation)
{
    const auto space = ls_space();
    const ParameterSpace empty;
    EXPECT_THROW(SimulatedAnnealing(empty, AnnealingConfig{}, Direction::maximize,
                                    sum_eval, HintSet::none(empty)),
                 std::invalid_argument);
    EXPECT_THROW(HillClimber(space, HillClimbConfig{}, Direction::maximize, EvalFn{},
                             HintSet::none(space)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace nautilus
