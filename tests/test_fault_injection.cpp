#include "core/fault_injection.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/ga.hpp"

namespace nautilus {
namespace {

ParameterSpace toy_space()
{
    ParameterSpace space;
    for (int i = 0; i < 4; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 7));
    return space;
}

Evaluation sum_eval(const Genome& g)
{
    double v = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
    return {true, v};
}

TEST(FaultInjectionConfig, ValidationCatchesBadSettings)
{
    FaultInjectionConfig cfg;
    cfg.fail_rate = -0.1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = FaultInjectionConfig{};
    cfg.hang_rate = 1.5;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = FaultInjectionConfig{};
    cfg.fail_rate = 0.6;
    cfg.hang_rate = 0.6;  // rates must sum to <= 1
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = FaultInjectionConfig{};
    cfg.hang_seconds = -1.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    EXPECT_NO_THROW(FaultInjectionConfig{}.validate());
}

TEST(FaultInjectingEvaluator, FaultDecisionIsDeterministicPerGenomeAndAttempt)
{
    FaultInjectionConfig cfg;
    cfg.fail_rate = 0.5;
    cfg.seed = 99;
    const auto space = toy_space();
    Rng rng{1};

    // Two injectors with the same seed misbehave on exactly the same
    // (genome, attempt) pairs, regardless of call interleaving.
    FaultInjectingEvaluator a{sum_eval, cfg};
    FaultInjectingEvaluator b{sum_eval, cfg};
    for (int i = 0; i < 200; ++i) {
        const Genome g = Genome::random(space, rng);
        bool a_threw = false;
        bool b_threw = false;
        try {
            a.evaluate(g);
        }
        catch (const InjectedFault&) {
            a_threw = true;
        }
        try {
            b.evaluate(g);
        }
        catch (const InjectedFault&) {
            b_threw = true;
        }
        EXPECT_EQ(a_threw, b_threw);
    }
    EXPECT_EQ(a.injected_failures(), b.injected_failures());
    EXPECT_GT(a.injected_failures(), 0u);  // 50% over 200 draws
}

TEST(FaultInjectingEvaluator, TransientFaultsRedrawPerAttempt)
{
    FaultInjectionConfig cfg;
    cfg.fail_rate = 0.5;
    cfg.seed = 7;
    cfg.permanent = false;
    FaultInjectingEvaluator injector{sum_eval, cfg};
    const auto space = toy_space();
    Rng rng{3};
    // With transient faults a design point that fails on attempt 1 usually
    // succeeds within a handful of retries; find a failing point and retry it.
    for (int i = 0; i < 100; ++i) {
        const Genome g = Genome::random(space, rng);
        bool first_failed = false;
        try {
            injector.evaluate(g);
        }
        catch (const InjectedFault&) {
            first_failed = true;
        }
        if (!first_failed) continue;
        bool recovered = false;
        for (int attempt = 0; attempt < 20 && !recovered; ++attempt) {
            try {
                injector.evaluate(g);
                recovered = true;
            }
            catch (const InjectedFault&) {
            }
        }
        EXPECT_TRUE(recovered);
        return;
    }
    FAIL() << "no injected failure in 100 draws at fail_rate 0.5";
}

TEST(FaultInjectingEvaluator, PermanentFaultsFailEveryAttempt)
{
    FaultInjectionConfig cfg;
    cfg.fail_rate = 0.5;
    cfg.seed = 7;
    cfg.permanent = true;
    FaultInjectingEvaluator injector{sum_eval, cfg};
    const auto space = toy_space();
    Rng rng{3};
    for (int i = 0; i < 100; ++i) {
        const Genome g = Genome::random(space, rng);
        bool first_failed = false;
        try {
            injector.evaluate(g);
        }
        catch (const InjectedFault&) {
            first_failed = true;
        }
        if (!first_failed) continue;
        // Permanent: every retry of the same genome fails too.
        for (int attempt = 0; attempt < 5; ++attempt)
            EXPECT_THROW(injector.evaluate(g), InjectedFault);
        return;
    }
    FAIL() << "no injected failure in 100 draws at fail_rate 0.5";
}

TEST(FaultInjectingEvaluator, FailOnNthCallTripsExactlyOnce)
{
    FaultInjectionConfig cfg;
    cfg.fail_on_nth_call = 3;
    FaultInjectingEvaluator injector{sum_eval, cfg};
    const auto space = toy_space();
    Rng rng{5};
    for (int call = 1; call <= 6; ++call) {
        const Genome g = Genome::random(space, rng);
        if (call == 3) EXPECT_THROW(injector.evaluate(g), InjectedFault);
        else EXPECT_NO_THROW(injector.evaluate(g));
    }
    EXPECT_EQ(injector.injected_failures(), 1u);
}

TEST(FaultInjectingEvaluator, FlakyValuesAreDeterministicallyPerturbed)
{
    FaultInjectionConfig cfg;
    cfg.flaky_value_rate = 1.0;  // every attempt is flaky
    cfg.seed = 11;
    FaultInjectingEvaluator injector{sum_eval, cfg};
    const Genome g{std::vector<std::uint32_t>{4, 4, 4, 4}};
    const Evaluation clean = sum_eval(g);
    const Evaluation flaky1 = injector.evaluate(g);
    EXPECT_NE(flaky1.value, clean.value);
    // The perturbation is a pure hash of (seed, key, attempt): a second
    // injector replays it exactly.
    FaultInjectingEvaluator replay{sum_eval, cfg};
    EXPECT_DOUBLE_EQ(replay.evaluate(g).value, flaky1.value);
    EXPECT_EQ(injector.injected_flaky(), 1u);
}

// The ISSUE's integration scenario: a full GA run against a 10% fail / 2%
// hang evaluator with retries + quarantine completes, and the guard's
// attempt accounting closes exactly (attempts == distinct evals + retries).
TEST(FaultInjectionIntegration, GaRunCompletesUnderChaosAndAccountingCloses)
{
    const auto space = toy_space();
    FaultInjectionConfig cfg;
    cfg.fail_rate = 0.10;
    cfg.hang_rate = 0.02;
    cfg.hang_seconds = 0.002;  // keep the suite fast; no watchdog configured
    cfg.seed = 0xc4a05;
    FaultInjectingEvaluator injector{sum_eval, cfg};

    GaConfig ga;
    ga.generations = 20;
    ga.seed = 9;
    ga.fault.retry.max_attempts = 4;
    ga.fault.tolerate_failures = true;
    ga.fault_penalty = Evaluation{false, 0.0};

    const GaEngine engine{space, ga, Direction::maximize, injector.as_eval_fn(),
                          HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_EQ(r.history.size(), 20u);       // the run was not aborted
    EXPECT_TRUE(r.best_eval.feasible);      // chaos did not erase the search
    EXPECT_GT(r.fault.failures, 0u);        // chaos actually fired
    EXPECT_EQ(r.fault.attempts, r.distinct_evals + r.fault.retries);
    EXPECT_GE(injector.injected_failures(), r.fault.failures);
}

TEST(FaultInjectionIntegration, ChaoticGaRunIsDeterministicForFixedSeeds)
{
    const auto space = toy_space();
    const auto run_once = [&] {
        FaultInjectionConfig cfg;
        cfg.fail_rate = 0.10;
        cfg.seed = 0xc4a05;
        FaultInjectingEvaluator injector{sum_eval, cfg};
        GaConfig ga;
        ga.generations = 15;
        ga.seed = 21;
        ga.fault.retry.max_attempts = 3;
        ga.fault.tolerate_failures = true;
        const GaEngine engine{space, ga, Direction::maximize, injector.as_eval_fn(),
                              HintSet::none(space)};
        return engine.run();
    };
    const RunResult a = run_once();
    const RunResult b = run_once();
    EXPECT_EQ(a.distinct_evals, b.distinct_evals);
    EXPECT_EQ(a.fault.attempts, b.fault.attempts);
    EXPECT_EQ(a.fault.retries, b.fault.retries);
    EXPECT_EQ(a.fault.quarantined, b.fault.quarantined);
    EXPECT_DOUBLE_EQ(a.best_eval.value, b.best_eval.value);
    ASSERT_EQ(a.final_population.size(), b.final_population.size());
    for (std::size_t i = 0; i < a.final_population.size(); ++i)
        EXPECT_EQ(a.final_population[i].genes(), b.final_population[i].genes());
}

TEST(FaultInjectionIntegration, ChaoticGaRunIsWorkerCountIndependent)
{
    const auto space = toy_space();
    const auto run_with_workers = [&](std::size_t workers) {
        FaultInjectionConfig cfg;
        cfg.fail_rate = 0.10;
        cfg.seed = 0xc4a05;
        FaultInjectingEvaluator injector{sum_eval, cfg};
        GaConfig ga;
        ga.generations = 15;
        ga.seed = 21;
        ga.eval_workers = workers;
        ga.fault.retry.max_attempts = 3;
        ga.fault.tolerate_failures = true;
        const GaEngine engine{space, ga, Direction::maximize, injector.as_eval_fn(),
                              HintSet::none(space)};
        return engine.run();
    };
    const RunResult serial = run_with_workers(1);
    const RunResult parallel = run_with_workers(4);
    EXPECT_EQ(serial.distinct_evals, parallel.distinct_evals);
    EXPECT_EQ(serial.fault.attempts, parallel.fault.attempts);
    EXPECT_EQ(serial.fault.quarantined, parallel.fault.quarantined);
    EXPECT_DOUBLE_EQ(serial.best_eval.value, parallel.best_eval.value);
    EXPECT_EQ(serial.final_rng_state, parallel.final_rng_state);
}

}  // namespace
}  // namespace nautilus
