#include "exp/constraint.hpp"

#include <gtest/gtest.h>

#include "core/ga.hpp"

namespace nautilus::exp {
namespace {

using ip::Metric;

// area = 100 + 10x, freq = 200 - 5x + 20y over x,y in [0,9].
class BudgetGenerator final : public ip::IpGenerator {
public:
    BudgetGenerator()
    {
        space_.add("x", ParamDomain::int_range(0, 9));
        space_.add("y", ParamDomain::int_range(0, 9));
    }
    std::string name() const override { return "budget"; }
    const ParameterSpace& space() const override { return space_; }
    std::vector<Metric> metrics() const override
    {
        return {Metric::area_luts, Metric::freq_mhz};
    }
    ip::MetricValues evaluate(const Genome& g) const override
    {
        ip::MetricValues mv;
        mv.set(Metric::area_luts, 100.0 + 10.0 * g.gene(0));
        mv.set(Metric::freq_mhz, 200.0 - 5.0 * g.gene(0) + 20.0 * g.gene(1));
        return mv;
    }

private:
    ParameterSpace space_;
};

TEST(Constraint, ViolationUpperBound)
{
    const Constraint c{Metric::area_luts, Constraint::Bound::upper, 100.0};
    EXPECT_DOUBLE_EQ(c.violation(100.0), 0.0);
    EXPECT_DOUBLE_EQ(c.violation(50.0), 0.0);
    EXPECT_DOUBLE_EQ(c.violation(150.0), 0.5);
    EXPECT_TRUE(c.satisfied(99.0));
    EXPECT_FALSE(c.satisfied(101.0));
}

TEST(Constraint, ViolationLowerBound)
{
    const Constraint c{Metric::freq_mhz, Constraint::Bound::lower, 200.0};
    EXPECT_DOUBLE_EQ(c.violation(200.0), 0.0);
    EXPECT_DOUBLE_EQ(c.violation(250.0), 0.0);
    EXPECT_DOUBLE_EQ(c.violation(100.0), 0.5);
}

TEST(Constraint, ZeroLimitDegenerates)
{
    const Constraint c{Metric::area_luts, Constraint::Bound::upper, 0.0};
    EXPECT_DOUBLE_EQ(c.violation(0.0), 0.0);
    EXPECT_DOUBLE_EQ(c.violation(1.0), 1.0);
}

TEST(ConstrainedEval, HardModeRejectsViolations)
{
    const BudgetGenerator gen;
    const std::vector<Constraint> cs{{Metric::area_luts, Constraint::Bound::upper, 130.0}};
    const EvalFn eval = constrained_eval(gen, Metric::freq_mhz, Direction::maximize, cs,
                                         ConstraintMode::hard);
    EXPECT_TRUE(eval(Genome{{3, 9}}).feasible);   // area 130 == limit
    EXPECT_FALSE(eval(Genome{{4, 9}}).feasible);  // area 140 > limit
}

TEST(ConstrainedEval, SatisfiedPointsKeepExactObjective)
{
    const BudgetGenerator gen;
    const std::vector<Constraint> cs{{Metric::area_luts, Constraint::Bound::upper, 190.0}};
    for (auto mode : {ConstraintMode::hard, ConstraintMode::penalty}) {
        const EvalFn eval =
            constrained_eval(gen, Metric::freq_mhz, Direction::maximize, cs, mode);
        const Evaluation e = eval(Genome{{2, 5}});
        EXPECT_TRUE(e.feasible);
        EXPECT_DOUBLE_EQ(e.value, 290.0);
    }
}

TEST(ConstrainedEval, PenaltyModeDegradesProportionally)
{
    const BudgetGenerator gen;
    const std::vector<Constraint> cs{{Metric::area_luts, Constraint::Bound::upper, 100.0}};
    const EvalFn eval = constrained_eval(gen, Metric::freq_mhz, Direction::maximize, cs,
                                         ConstraintMode::penalty, 1.0);
    const Evaluation mild = eval(Genome{{1, 5}});   // area 110, violation 0.1
    const Evaluation severe = eval(Genome{{9, 5}}); // area 190, violation 0.9
    ASSERT_TRUE(mild.feasible);
    ASSERT_TRUE(severe.feasible);
    // Both are degraded below their raw objectives and severity matters.
    EXPECT_LT(mild.value, 295.0);
    EXPECT_LT(severe.value, mild.value);
}

TEST(ConstrainedEval, PenaltyDirectionAwareForMinimize)
{
    const BudgetGenerator gen;
    const std::vector<Constraint> cs{{Metric::freq_mhz, Constraint::Bound::lower, 300.0}};
    const EvalFn eval = constrained_eval(gen, Metric::area_luts, Direction::minimize, cs,
                                         ConstraintMode::penalty, 1.0);
    // Point with freq 200 (violation 1/3): area objective must get *worse*
    // (larger) under minimization.
    const Evaluation e = eval(Genome{{0, 0}});
    ASSERT_TRUE(e.feasible);
    EXPECT_GT(e.value, 100.0);
}

TEST(ConstrainedEval, MissingMetricIsInfeasible)
{
    const BudgetGenerator gen;
    const std::vector<Constraint> cs{{Metric::snr_db, Constraint::Bound::upper, 1.0}};
    const EvalFn eval = constrained_eval(gen, Metric::freq_mhz, Direction::maximize, cs,
                                         ConstraintMode::hard);
    EXPECT_FALSE(eval(Genome{{0, 0}}).feasible);
}

TEST(ConstrainedEval, NegativePenaltyWeightRejected)
{
    const BudgetGenerator gen;
    EXPECT_THROW(constrained_eval(gen, Metric::freq_mhz, Direction::maximize, {},
                                  ConstraintMode::penalty, -1.0),
                 std::invalid_argument);
}

TEST(ConstrainedEval, GaRespectsHardBudget)
{
    const BudgetGenerator gen;
    const std::vector<Constraint> cs{{Metric::area_luts, Constraint::Bound::upper, 120.0}};
    const EvalFn eval = constrained_eval(gen, Metric::freq_mhz, Direction::maximize, cs,
                                         ConstraintMode::hard);
    GaConfig cfg;
    cfg.generations = 30;
    cfg.seed = 77;
    const GaEngine engine{gen.space(), cfg, Direction::maximize, eval,
                          HintSet::none(gen.space())};
    const RunResult r = engine.run();
    ASSERT_TRUE(r.best_eval.feasible);
    // Constrained optimum: x = 2 (area 120), y = 9 -> freq 370.
    EXPECT_LE(gen.evaluate(r.best_genome).get(Metric::area_luts), 120.0);
    EXPECT_GE(r.best_eval.value, 360.0);
}

TEST(ConstraintSatisfactionRate, CountsQualifyingEntries)
{
    const BudgetGenerator gen;
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    const std::vector<Constraint> half{{Metric::area_luts, Constraint::Bound::upper,
                                        140.0}};
    // x in {0..4} qualifies: 50 of 100 points.
    EXPECT_DOUBLE_EQ(constraint_satisfaction_rate(ds, half), 0.5);
    const std::vector<Constraint> none{{Metric::area_luts, Constraint::Bound::upper, 1.0}};
    EXPECT_DOUBLE_EQ(constraint_satisfaction_rate(ds, none), 0.0);
}

}  // namespace
}  // namespace nautilus::exp
