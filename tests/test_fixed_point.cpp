#include "fft/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nautilus::fft {
namespace {

TEST(FixedPoint, BoundsMatchWidth)
{
    EXPECT_EQ(fixed_max(8), 127);
    EXPECT_EQ(fixed_min(8), -128);
    EXPECT_EQ(fixed_max(16), 32767);
    EXPECT_EQ(fixed_min(16), -32768);
    EXPECT_THROW(fixed_max(1), std::invalid_argument);
    EXPECT_THROW(fixed_max(33), std::invalid_argument);
}

TEST(FixedPoint, SaturateClampsAndReports)
{
    bool overflow = false;
    EXPECT_EQ(saturate(127, 8, &overflow), 127);
    EXPECT_FALSE(overflow);
    EXPECT_EQ(saturate(128, 8, &overflow), 127);
    EXPECT_TRUE(overflow);
    overflow = false;
    EXPECT_EQ(saturate(-129, 8, &overflow), -128);
    EXPECT_TRUE(overflow);
}

TEST(FixedPoint, QuantizeRoundTripsSmallValues)
{
    for (double v : {0.0, 0.25, -0.25, 0.5, -0.5, 0.75}) {
        const auto q = quantize(v, 16);
        EXPECT_NEAR(to_double(q, 16), v, 1.0 / 32768.0);
    }
}

TEST(FixedPoint, QuantizeSaturatesAtOne)
{
    EXPECT_EQ(quantize(1.0, 8), 127);   // +1.0 is just out of range
    EXPECT_EQ(quantize(-1.0, 8), -128);
    EXPECT_EQ(quantize(100.0, 8), 127);
}

TEST(FixedPoint, QuantizationErrorShrinksWithWidth)
{
    const double v = 0.333333;
    const double err8 = std::abs(to_double(quantize(v, 8), 8) - v);
    const double err16 = std::abs(to_double(quantize(v, 16), 16) - v);
    const double err24 = std::abs(to_double(quantize(v, 24), 24) - v);
    EXPECT_GT(err8, err16);
    EXPECT_GT(err16, err24);
}

TEST(FixedPoint, MulRoundMatchesScaledProduct)
{
    // 0.5 * 0.5 = 0.25 in Q1.15.
    const auto half = quantize(0.5, 16);
    const auto p = mul_round(half, half, 15);
    EXPECT_NEAR(to_double(p, 16), 0.25, 1e-4);
    EXPECT_THROW(mul_round(1, 1, -1), std::invalid_argument);
}

TEST(FixedPoint, ComplexMultiplyByUnitTwiddle)
{
    const CFix a = cquantize({0.5, -0.25}, 16);
    const CFix one = cquantize({1.0, 0.0}, 16);  // saturates to just under 1
    const CFix p = cmul(a, one, 16, 16);
    EXPECT_NEAR(to_double(p.re, 16), 0.5, 0.001);
    EXPECT_NEAR(to_double(p.im, 16), -0.25, 0.001);
}

TEST(FixedPoint, ComplexMultiplyByJ)
{
    // (x + iy) * i = -y + ix
    const CFix a = cquantize({0.5, 0.25}, 16);
    const CFix j = cquantize({0.0, 1.0}, 16);
    const CFix p = cmul(a, j, 16, 16);
    EXPECT_NEAR(to_double(p.re, 16), -0.25, 0.001);
    EXPECT_NEAR(to_double(p.im, 16), 0.5, 0.001);
}

TEST(FixedPoint, ComplexMultiplyMatchesDoubleMath)
{
    const std::complex<double> a{0.3, -0.4};
    const std::complex<double> w{0.6, 0.7};
    const std::complex<double> expected = a * w;
    const CFix p = cmul(cquantize(a, 20), cquantize(w, 18), 20, 18);
    EXPECT_NEAR(to_double(p.re, 20), expected.real(), 1e-4);
    EXPECT_NEAR(to_double(p.im, 20), expected.imag(), 1e-4);
}

TEST(FixedPoint, AddAndSubSaturate)
{
    bool overflow = false;
    const CFix big{fixed_max(8), 0};
    const CFix one{1, 0};
    const CFix s = cadd(big, one, 8, &overflow);
    EXPECT_TRUE(overflow);
    EXPECT_EQ(s.re, fixed_max(8));
    overflow = false;
    const CFix d = csub(CFix{fixed_min(8), 0}, one, 8, &overflow);
    EXPECT_TRUE(overflow);
    EXPECT_EQ(d.re, fixed_min(8));
}

TEST(FixedPoint, AddSubRoundTrip)
{
    const CFix a = cquantize({0.3, 0.1}, 16);
    const CFix b = cquantize({0.2, -0.4}, 16);
    const CFix s = cadd(a, b, 16);
    const CFix back = csub(s, b, 16);
    EXPECT_EQ(back.re, a.re);
    EXPECT_EQ(back.im, a.im);
}

TEST(FixedPoint, ShiftDownHalves)
{
    const CFix a{100, -50};
    const CFix h = cshift_down(a);
    EXPECT_EQ(h.re, 50);
    EXPECT_EQ(h.im, -25);  // (-50+1)>>1 == -25 (round toward +inf at .5)
}

TEST(FixedPoint, ComplexQuantizeRoundTrip)
{
    const std::complex<double> v{0.123, -0.456};
    const auto back = cfix_to_complex(cquantize(v, 18), 18);
    EXPECT_NEAR(back.real(), v.real(), 1e-4);
    EXPECT_NEAR(back.imag(), v.imag(), 1e-4);
}

class WidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(WidthSweep, QuantizeStaysRepresentable)
{
    const int width = GetParam();
    for (double v = -0.95; v < 0.95; v += 0.13) {
        const auto q = quantize(v, width);
        EXPECT_LE(q, fixed_max(width));
        EXPECT_GE(q, fixed_min(width));
        EXPECT_NEAR(to_double(q, width), v, std::ldexp(1.0, -(width - 2)));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep, ::testing::Values(8, 10, 12, 16, 20, 24, 32));

}  // namespace
}  // namespace nautilus::fft
