#include "core/genome.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nautilus {
namespace {

ParameterSpace small_space()
{
    ParameterSpace space;
    space.add("a", ParamDomain::int_range(0, 3));      // 4
    space.add("b", ParamDomain::pow2(1, 3));           // 3
    space.add("c", ParamDomain::boolean());            // 2
    space.add("d", ParamDomain::categorical({"x", "y", "z"}));  // 3
    return space;
}

TEST(Genome, ZerosMatchesSpace)
{
    const auto space = small_space();
    const Genome g = Genome::zeros(space);
    EXPECT_EQ(g.size(), 4u);
    for (std::size_t i = 0; i < g.size(); ++i) EXPECT_EQ(g.gene(i), 0u);
    EXPECT_TRUE(g.compatible_with(space));
}

TEST(Genome, RandomStaysInBounds)
{
    const auto space = small_space();
    Rng rng{1};
    for (int i = 0; i < 200; ++i) {
        const Genome g = Genome::random(space, rng);
        ASSERT_TRUE(g.compatible_with(space));
    }
}

TEST(Genome, RandomCoversSpace)
{
    const auto space = small_space();
    Rng rng{2};
    std::set<std::size_t> ranks;
    for (int i = 0; i < 2000; ++i) ranks.insert(Genome::random(space, rng).to_rank(space));
    // 72 possible configurations; 2000 draws should see almost all.
    EXPECT_GT(ranks.size(), 68u);
}

TEST(Genome, RankRoundTrip)
{
    const auto space = small_space();
    const std::size_t total = *space.exact_cardinality();
    EXPECT_EQ(total, 72u);
    for (std::size_t rank = 0; rank < total; ++rank) {
        const Genome g = Genome::from_rank(space, rank);
        ASSERT_TRUE(g.compatible_with(space));
        EXPECT_EQ(g.to_rank(space), rank);
    }
}

TEST(Genome, FromRankOutOfRange)
{
    const auto space = small_space();
    EXPECT_THROW(Genome::from_rank(space, 72), std::out_of_range);
}

TEST(Genome, RanksAreDistinct)
{
    const auto space = small_space();
    std::set<std::uint64_t> keys;
    for (std::size_t rank = 0; rank < 72; ++rank) {
        const Genome g = Genome::from_rank(space, rank);
        keys.insert(g.key());
    }
    EXPECT_EQ(keys.size(), 72u);  // key collisions would break caching
}

TEST(Genome, GeneAccessValidation)
{
    Genome g{{1, 2}};
    EXPECT_EQ(g.gene(1), 2u);
    EXPECT_THROW(g.gene(2), std::out_of_range);
    EXPECT_THROW(g.set_gene(2, 0), std::out_of_range);
    g.set_gene(0, 5);
    EXPECT_EQ(g.gene(0), 5u);
}

TEST(Genome, NumericAndNameDecoding)
{
    const auto space = small_space();
    Genome g{{2, 1, 1, 2}};
    EXPECT_DOUBLE_EQ(g.numeric_value(space, 0), 2.0);
    EXPECT_DOUBLE_EQ(g.numeric_value(space, 1), 4.0);  // 2^2
    EXPECT_EQ(g.value_name(space, 2), "true");
    EXPECT_EQ(g.value_name(space, 3), "z");
}

TEST(Genome, CompatibilityChecks)
{
    const auto space = small_space();
    EXPECT_FALSE((Genome{{0, 0, 0}}.compatible_with(space)));        // too short
    EXPECT_FALSE((Genome{{0, 0, 0, 0, 0}}.compatible_with(space)));  // too long
    EXPECT_FALSE((Genome{{4, 0, 0, 0}}.compatible_with(space)));     // out of domain
    EXPECT_TRUE((Genome{{3, 2, 1, 2}}.compatible_with(space)));
}

TEST(Genome, ToRankRejectsIncompatible)
{
    const auto space = small_space();
    EXPECT_THROW((Genome{{9, 9, 9, 9}}.to_rank(space)), std::invalid_argument);
}

TEST(Genome, KeyIsOrderSensitive)
{
    EXPECT_NE((Genome{{1, 2}}.key()), (Genome{{2, 1}}.key()));
    EXPECT_NE((Genome{{1}}.key()), (Genome{{1, 0}}.key()));
}

TEST(Genome, EqualityAndHashAgree)
{
    Genome a{{1, 2, 3}};
    Genome b{{1, 2, 3}};
    EXPECT_EQ(a, b);
    EXPECT_EQ(GenomeHash{}(a), GenomeHash{}(b));
}

TEST(Genome, ToStringListsAllParameters)
{
    const auto space = small_space();
    const Genome g{{1, 0, 1, 0}};
    EXPECT_EQ(g.to_string(space), "a=1 b=2 c=true d=x");
    EXPECT_EQ((Genome{{0}}.to_string(space)), "<incompatible genome>");
}

class GenomeRankSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GenomeRankSweep, AdjacentRanksDifferInOneTrailingDigitChain)
{
    const auto space = small_space();
    const std::size_t rank = GetParam();
    const Genome a = Genome::from_rank(space, rank);
    const Genome b = Genome::from_rank(space, rank + 1);
    EXPECT_NE(a, b);
    // The last parameter is the fastest digit.
    if (a.gene(3) + 1 < 3) {
        EXPECT_EQ(b.gene(3), a.gene(3) + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Ranks, GenomeRankSweep, ::testing::Values(0u, 1u, 7u, 35u, 70u));

}  // namespace
}  // namespace nautilus
