#include "ip/ip_generator.hpp"

#include <gtest/gtest.h>

namespace nautilus::ip {
namespace {

TEST(Metric, NamesRoundTrip)
{
    const Metric all[] = {Metric::area_luts,       Metric::ffs,
                          Metric::brams,           Metric::dsps,
                          Metric::freq_mhz,        Metric::period_ns,
                          Metric::power_mw,        Metric::area_mm2,
                          Metric::throughput_msps, Metric::snr_db,
                          Metric::bisection_gbps,  Metric::area_delay_product,
                          Metric::throughput_per_lut, Metric::latency_ns,
                          Metric::saturation_injection};
    for (Metric m : all) {
        const auto parsed = metric_from_name(metric_name(m));
        ASSERT_TRUE(parsed.has_value()) << metric_name(m);
        EXPECT_EQ(*parsed, m);
        EXPECT_NE(metric_unit(m), nullptr);
    }
    EXPECT_FALSE(metric_from_name("not_a_metric").has_value());
}

TEST(Metric, DefaultDirectionsMakeSense)
{
    EXPECT_EQ(metric_default_direction(Metric::area_luts), Direction::minimize);
    EXPECT_EQ(metric_default_direction(Metric::freq_mhz), Direction::maximize);
    EXPECT_EQ(metric_default_direction(Metric::throughput_per_lut), Direction::maximize);
    EXPECT_EQ(metric_default_direction(Metric::power_mw), Direction::minimize);
}

TEST(MetricValues, SetGetAndOverwrite)
{
    MetricValues mv;
    mv.set(Metric::area_luts, 100.0);
    EXPECT_TRUE(mv.has(Metric::area_luts));
    EXPECT_DOUBLE_EQ(mv.get(Metric::area_luts), 100.0);
    mv.set(Metric::area_luts, 200.0);
    EXPECT_DOUBLE_EQ(mv.get(Metric::area_luts), 200.0);
    EXPECT_EQ(mv.items().size(), 1u);
}

TEST(MetricValues, MissingMetricThrowsOrReturnsNullopt)
{
    const MetricValues mv;
    EXPECT_THROW(mv.get(Metric::snr_db), std::out_of_range);
    EXPECT_FALSE(mv.try_get(Metric::snr_db).has_value());
}

TEST(MetricValues, InfeasiblePoint)
{
    const MetricValues mv = MetricValues::infeasible_point();
    EXPECT_FALSE(mv.feasible);
    EXPECT_TRUE(mv.items().empty());
}

TEST(DeriveComposites, PeriodFromFrequency)
{
    MetricValues mv;
    mv.set(Metric::freq_mhz, 250.0);
    derive_composites(mv);
    EXPECT_DOUBLE_EQ(mv.get(Metric::period_ns), 4.0);
}

TEST(DeriveComposites, AreaDelayProduct)
{
    MetricValues mv;
    mv.set(Metric::freq_mhz, 100.0);
    mv.set(Metric::area_luts, 500.0);
    derive_composites(mv);
    EXPECT_DOUBLE_EQ(mv.get(Metric::area_delay_product), 5000.0);
}

TEST(DeriveComposites, ThroughputPerLut)
{
    MetricValues mv;
    mv.set(Metric::throughput_msps, 800.0);
    mv.set(Metric::area_luts, 400.0);
    derive_composites(mv);
    EXPECT_DOUBLE_EQ(mv.get(Metric::throughput_per_lut), 2.0);
}

TEST(DeriveComposites, DoesNotOverwriteExplicitValues)
{
    MetricValues mv;
    mv.set(Metric::freq_mhz, 100.0);
    mv.set(Metric::period_ns, 7.0);  // explicitly characterized
    derive_composites(mv);
    EXPECT_DOUBLE_EQ(mv.get(Metric::period_ns), 7.0);
}

TEST(DeriveComposites, SkipsInfeasibleAndZeroDenominators)
{
    MetricValues infeasible = MetricValues::infeasible_point();
    derive_composites(infeasible);
    EXPECT_TRUE(infeasible.items().empty());

    MetricValues zero_luts;
    zero_luts.set(Metric::throughput_msps, 10.0);
    zero_luts.set(Metric::area_luts, 0.0);
    derive_composites(zero_luts);
    EXPECT_FALSE(zero_luts.has(Metric::throughput_per_lut));
}

// Minimal generator to exercise the IpGenerator adapters.
class ToyGenerator final : public IpGenerator {
public:
    ToyGenerator()
    {
        space_.add("x", ParamDomain::int_range(0, 9));
    }

    std::string name() const override { return "toy"; }
    const ParameterSpace& space() const override { return space_; }
    std::vector<Metric> metrics() const override
    {
        return {Metric::area_luts, Metric::freq_mhz};
    }
    MetricValues evaluate(const Genome& g) const override
    {
        if (g.gene(0) == 9) return MetricValues::infeasible_point();
        MetricValues mv;
        mv.set(Metric::area_luts, 100.0 + g.gene(0));
        mv.set(Metric::freq_mhz, 200.0 - g.gene(0));
        return mv;
    }

private:
    ParameterSpace space_;
};

TEST(IpGenerator, MetricEvalReturnsRequestedMetric)
{
    const ToyGenerator gen;
    const EvalFn eval = gen.metric_eval(Metric::freq_mhz);
    const Evaluation e = eval(Genome{{3}});
    EXPECT_TRUE(e.feasible);
    EXPECT_DOUBLE_EQ(e.value, 197.0);
}

TEST(IpGenerator, MetricEvalPropagatesInfeasibility)
{
    const ToyGenerator gen;
    const EvalFn eval = gen.metric_eval(Metric::area_luts);
    EXPECT_FALSE(eval(Genome{{9}}).feasible);
}

TEST(IpGenerator, MetricEvalMissingMetricIsInfeasible)
{
    const ToyGenerator gen;
    const EvalFn eval = gen.metric_eval(Metric::snr_db);
    EXPECT_FALSE(eval(Genome{{1}}).feasible);
}

TEST(IpGenerator, DefaultAuthorHintsAreBaseline)
{
    const ToyGenerator gen;
    const HintSet hints = gen.author_hints(Metric::area_luts);
    EXPECT_TRUE(hints.is_baseline());
    EXPECT_NO_THROW(hints.validate(gen.space()));
}

}  // namespace
}  // namespace nautilus::ip
