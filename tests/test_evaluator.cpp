#include "core/evaluator.hpp"

#include <gtest/gtest.h>

namespace nautilus {
namespace {

ParameterSpace two_param_space()
{
    ParameterSpace space;
    space.add("a", ParamDomain::int_range(0, 9));
    space.add("b", ParamDomain::int_range(0, 9));
    return space;
}

TEST(CachingEvaluator, RejectsNullFunction)
{
    EXPECT_THROW(CachingEvaluator{EvalFn{}}, std::invalid_argument);
}

TEST(CachingEvaluator, ChargesEachDistinctGenomeOnce)
{
    int calls = 0;
    CachingEvaluator ev{[&](const Genome& g) {
        ++calls;
        return Evaluation{true, static_cast<double>(g.gene(0))};
    }};

    const Genome a{{1, 2}};
    const Genome b{{3, 4}};
    ev.evaluate(a);
    ev.evaluate(b);
    ev.evaluate(a);
    ev.evaluate(a);
    ev.evaluate(b);

    EXPECT_EQ(calls, 2);
    EXPECT_EQ(ev.distinct_evaluations(), 2u);
    EXPECT_EQ(ev.total_calls(), 5u);
}

TEST(CachingEvaluator, ReturnsCachedValueExactly)
{
    CachingEvaluator ev{[](const Genome& g) {
        return Evaluation{g.gene(0) != 0, static_cast<double>(g.gene(0)) * 1.5};
    }};
    const Genome g{{4, 0}};
    const Evaluation first = ev.evaluate(g);
    const Evaluation second = ev.evaluate(g);
    EXPECT_EQ(first.feasible, second.feasible);
    EXPECT_DOUBLE_EQ(first.value, second.value);
    EXPECT_DOUBLE_EQ(first.value, 6.0);
}

TEST(CachingEvaluator, CachesInfeasibleResults)
{
    int calls = 0;
    CachingEvaluator ev{[&](const Genome&) {
        ++calls;
        return Evaluation{false, 0.0};
    }};
    const Genome g{{0, 0}};
    EXPECT_FALSE(ev.evaluate(g).feasible);
    EXPECT_FALSE(ev.evaluate(g).feasible);
    EXPECT_EQ(calls, 1);
}

TEST(CachingEvaluator, ClearResetsEverything)
{
    int calls = 0;
    CachingEvaluator ev{[&](const Genome&) {
        ++calls;
        return Evaluation{true, 1.0};
    }};
    const Genome g{{0, 0}};
    ev.evaluate(g);
    ev.clear();
    EXPECT_EQ(ev.distinct_evaluations(), 0u);
    EXPECT_EQ(ev.total_calls(), 0u);
    ev.evaluate(g);
    EXPECT_EQ(calls, 2);  // recomputed after clear
}

TEST(CachingEvaluator, ManyGenomesAllDistinct)
{
    CachingEvaluator ev{[](const Genome& g) {
        return Evaluation{true, static_cast<double>(g.key() % 100)};
    }};
    const auto space = two_param_space();
    for (std::size_t rank = 0; rank < 100; ++rank)
        ev.evaluate(Genome::from_rank(space, rank));
    EXPECT_EQ(ev.distinct_evaluations(), 100u);
}

}  // namespace
}  // namespace nautilus
