#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace nautilus::exp {
namespace {

using ip::Metric;

// Small IP with author hints, enumerable space, known best points.
class HintedGenerator final : public ip::IpGenerator {
public:
    HintedGenerator()
    {
        space_.add("x", ParamDomain::int_range(0, 9));
        space_.add("y", ParamDomain::int_range(0, 9));
        space_.add("z", ParamDomain::int_range(0, 9));
    }

    std::string name() const override { return "hinted"; }
    const ParameterSpace& space() const override { return space_; }
    std::vector<Metric> metrics() const override
    {
        return {Metric::area_luts, Metric::freq_mhz, Metric::area_delay_product};
    }
    ip::MetricValues evaluate(const Genome& g) const override
    {
        // area grows with x and y; freq grows with z and shrinks with x.
        ip::MetricValues mv;
        mv.set(Metric::area_luts, 100.0 + 30.0 * g.gene(0) + 10.0 * g.gene(1));
        mv.set(Metric::freq_mhz, 100.0 + 15.0 * g.gene(2) - 5.0 * g.gene(0));
        ip::derive_composites(mv);
        return mv;
    }
    HintSet author_hints(Metric m) const override
    {
        HintSet h = HintSet::none(space_);
        if (m == Metric::area_luts) {
            h.param(0).importance = 90.0;
            h.param(0).bias = 0.9;
            h.param(1).importance = 40.0;
            h.param(1).bias = 0.5;
        }
        if (m == Metric::freq_mhz) {
            h.param(2).importance = 90.0;
            h.param(2).bias = 0.9;
            h.param(0).importance = 40.0;
            h.param(0).bias = -0.4;
        }
        return h;
    }

private:
    ParameterSpace space_;
};

TEST(Query, SimpleConstruction)
{
    const Query q = Query::simple("q", Metric::freq_mhz, Direction::maximize);
    EXPECT_EQ(q.metric, Metric::freq_mhz);
    EXPECT_EQ(q.direction, Direction::maximize);
    EXPECT_TRUE(q.hint_components.empty());
}

TEST(QueryHints, MaximizeKeepsAuthorOrientation)
{
    const HintedGenerator gen;
    const Query q = Query::simple("max-freq", Metric::freq_mhz, Direction::maximize);
    const HintSet h = query_hints(gen, q);
    EXPECT_DOUBLE_EQ(*h.param(2).bias, 0.9);
    EXPECT_DOUBLE_EQ(h.confidence(), 0.0);
}

TEST(QueryHints, MinimizeFoldsBias)
{
    const HintedGenerator gen;
    const Query q = Query::simple("min-area", Metric::area_luts, Direction::minimize);
    const HintSet h = query_hints(gen, q);
    // Author says area grows with x; to minimize, the engine should push x
    // down: folded bias is negative.
    EXPECT_DOUBLE_EQ(*h.param(0).bias, -0.9);
}

TEST(QueryHints, CompositeMergesComponents)
{
    const HintedGenerator gen;
    Query q = Query::simple("adp", Metric::area_delay_product, Direction::minimize);
    q.hint_components = {{Metric::area_luts, Direction::minimize, 0.5},
                         {Metric::freq_mhz, Direction::maximize, 0.5}};
    const HintSet h = query_hints(gen, q);
    EXPECT_NO_THROW(h.validate(gen.space()));
    // x hurts area (fold: -0.9) and hurts freq (fold: -0.4): merged negative.
    ASSERT_TRUE(h.param(0).bias.has_value());
    EXPECT_LT(*h.param(0).bias, 0.0);
    // z helps freq only: positive.
    ASSERT_TRUE(h.param(2).bias.has_value());
    EXPECT_GT(*h.param(2).bias, 0.0);
}

ExperimentConfig tiny_config()
{
    ExperimentConfig cfg;
    cfg.runs = 6;
    cfg.ga.generations = 15;
    cfg.ga.seed = 21;
    return cfg;
}

TEST(Experiment, RequiresEngines)
{
    const HintedGenerator gen;
    Experiment e{gen, Query::simple("q", Metric::freq_mhz, Direction::maximize),
                 tiny_config()};
    EXPECT_THROW(e.run(), std::logic_error);
}

TEST(Experiment, RunsAllEngines)
{
    const HintedGenerator gen;
    Experiment e{gen, Query::simple("q", Metric::freq_mhz, Direction::maximize),
                 tiny_config()};
    e.add_standard_engines();
    const ExperimentResult r = e.run();
    ASSERT_EQ(r.engines.size(), 3u);
    for (const auto& er : r.engines) EXPECT_EQ(er.curve.runs(), 6u);
    EXPECT_FALSE(r.random_search.has_value());
}

TEST(Experiment, RandomSearchCanBeEnabled)
{
    const HintedGenerator gen;
    Experiment e{gen, Query::simple("q", Metric::freq_mhz, Direction::maximize),
                 tiny_config()};
    e.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
    e.enable_random_search(50);
    const ExperimentResult r = e.run();
    ASSERT_TRUE(r.random_search.has_value());
    EXPECT_EQ(r.random_search->runs(), 6u);
}

TEST(Experiment, DatasetAndLiveEvaluationAgree)
{
    const HintedGenerator gen;
    const ip::Dataset ds = ip::Dataset::enumerate(gen);
    const Query q = Query::simple("q", Metric::freq_mhz, Direction::maximize);

    Experiment live{gen, q, tiny_config()};
    live.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
    Experiment cached{gen, q, tiny_config()};
    cached.use_dataset(ds);
    cached.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});

    // Deterministic evaluation + deterministic seeds: identical results.
    const auto a = live.run();
    const auto b = cached.run();
    EXPECT_DOUBLE_EQ(a.engines[0].curve.mean_final_best(),
                     b.engines[0].curve.mean_final_best());
}

TEST(Experiment, ConfidenceOverrideIsApplied)
{
    const HintedGenerator gen;
    Experiment e{gen, Query::simple("q", Metric::freq_mhz, Direction::maximize),
                 tiny_config()};
    e.add_engine({"baseline", GuidanceLevel::none, std::nullopt, std::nullopt});
    e.add_engine({"custom", GuidanceLevel::custom, std::nullopt, 0.99});
    const ExperimentResult r = e.run();
    // Strongly-guided custom engine should do at least as well on this
    // easy monotone query.
    EXPECT_GE(r.engines[1].curve.mean_final_best() + 5.0,
              r.engines[0].curve.mean_final_best());
}

TEST(Experiment, HintsOverrideReplacesAuthorHints)
{
    const HintedGenerator gen;
    HintSet inverted = HintSet::none(gen.space());
    inverted.param(2).bias = -0.9;  // wrong direction on purpose
    inverted.param(2).importance = 90.0;

    Experiment e{gen, Query::simple("q", Metric::freq_mhz, Direction::maximize),
                 tiny_config()};
    e.add_engine({"author", GuidanceLevel::strong, std::nullopt, std::nullopt});
    e.add_engine({"inverted", GuidanceLevel::strong, inverted, std::nullopt});
    const ExperimentResult r = e.run();
    EXPECT_GE(r.engines[0].curve.mean_final_best(),
              r.engines[1].curve.mean_final_best() - 5.0);
}

TEST(ExperimentResult, SeriesAndGridAreConsistent)
{
    const HintedGenerator gen;
    Experiment e{gen, Query::simple("q", Metric::area_luts, Direction::minimize),
                 tiny_config()};
    e.add_standard_engines();
    const ExperimentResult r = e.run();
    const auto grid = r.shared_grid();
    const auto series = r.series();
    EXPECT_EQ(series.size(), 3u);
    EXPECT_FALSE(grid.empty());
    for (const auto& s : series) {
        EXPECT_FALSE(s.points.empty());
        // Mean curves are monotone improving for a minimize query.
        for (std::size_t i = 1; i < s.points.size(); ++i)
            EXPECT_LE(s.points[i].best, s.points[i - 1].best + 1e-9);
    }
}

TEST(ExperimentResult, PrintProducesReadableReport)
{
    const HintedGenerator gen;
    Experiment e{gen, Query::simple("toy-query", Metric::freq_mhz, Direction::maximize),
                 tiny_config()};
    e.add_standard_engines();
    const ExperimentResult r = e.run();
    std::ostringstream out;
    r.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("toy-query"), std::string::npos);
    EXPECT_NE(text.find("baseline"), std::string::npos);
    EXPECT_NE(text.find("nautilus-strong"), std::string::npos);
    EXPECT_NE(text.find("legend"), std::string::npos);

    std::ostringstream conv;
    r.print_convergence(conv, 200.0, "test threshold");
    EXPECT_NE(conv.str().find("test threshold"), std::string::npos);
}

TEST(Series, ValueAtStepInterpolation)
{
    const std::vector<CurvePoint> pts{{10, 1.0}, {20, 2.0}};
    EXPECT_TRUE(std::isnan(series_value_at(pts, 5)));
    EXPECT_DOUBLE_EQ(series_value_at(pts, 10), 1.0);
    EXPECT_DOUBLE_EQ(series_value_at(pts, 15), 1.0);
    EXPECT_DOUBLE_EQ(series_value_at(pts, 25), 2.0);
}

TEST(Series, TableRendersAllColumns)
{
    std::ostringstream out;
    print_series_table(out, "evals", "metric", {10.0, 20.0},
                       {{"alpha", {{10, 1.0}, {20, 2.0}}}, {"beta", {{10, 3.0}}}});
    const std::string text = out.str();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("beta"), std::string::npos);
    EXPECT_NE(text.find("evals"), std::string::npos);
}

TEST(Series, AsciiChartHasLegendAndAxes)
{
    std::ostringstream out;
    print_ascii_chart(out, "chart-title", {{"alpha", {{0, 0.0}, {50, 5.0}, {100, 10.0}}}},
                      40, 10);
    const std::string text = out.str();
    EXPECT_NE(text.find("chart-title"), std::string::npos);
    EXPECT_NE(text.find("legend"), std::string::npos);
    EXPECT_NE(text.find("evals"), std::string::npos);
}

TEST(Series, ScatterRendersGroups)
{
    std::ostringstream out;
    ScatterOptions opts;
    opts.log_x = true;
    opts.log_y = true;
    print_scatter(out, "scatter", "x", "y",
                  {{"g1", 'a', {{1.0, 10.0}, {100.0, 1000.0}}},
                   {"g2", 'b', {{10.0, 100.0}}}},
                  opts);
    const std::string text = out.str();
    EXPECT_NE(text.find("scatter"), std::string::npos);
    EXPECT_NE(text.find("[a] g1"), std::string::npos);
    EXPECT_NE(text.find("(log)"), std::string::npos);
}

}  // namespace
}  // namespace nautilus::exp
