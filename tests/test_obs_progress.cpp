// ProgressTracker tests: lifecycle accounting, JSON/heartbeat rendering,
// and end-to-end agreement between the tracker and engine run results.

#include "obs/progress.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "core/ga.hpp"
#include "core/local_search.hpp"
#include "core/random_search.hpp"
#include "obs/obs.hpp"

using namespace nautilus;
using namespace nautilus::obs;

namespace {

ParameterSpace toy_space()
{
    ParameterSpace space;
    for (int i = 0; i < 4; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 7));
    return space;
}

Evaluation sum_eval(const Genome& g)
{
    double v = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
    return {true, v};
}

TEST(ObsProgress, LifecycleAccounting)
{
    ProgressTracker tracker;
    ProgressSnapshot snap = tracker.snapshot();
    EXPECT_FALSE(snap.running);
    EXPECT_EQ(snap.runs_started, 0u);
    EXPECT_TRUE(snap.engine.empty());

    tracker.on_run_start("ga", 80);
    tracker.on_units(12);
    tracker.on_best(123.5);
    tracker.on_wave(10, 7, 0.25);
    tracker.on_wave(10, 3, 0.25);

    snap = tracker.snapshot();
    EXPECT_TRUE(snap.running);
    EXPECT_EQ(snap.engine, "ga");
    EXPECT_EQ(snap.runs_started, 1u);
    EXPECT_EQ(snap.runs_completed, 0u);
    EXPECT_EQ(snap.units_done, 12u);
    EXPECT_EQ(snap.units_total, 80u);
    EXPECT_TRUE(snap.have_best);
    EXPECT_DOUBLE_EQ(snap.best, 123.5);
    EXPECT_EQ(snap.distinct_evals, 10u);
    EXPECT_EQ(snap.eval_calls, 20u);
    EXPECT_EQ(snap.cache_hits, 10u);
    EXPECT_DOUBLE_EQ(snap.cache_hit_rate(), 0.5);
    EXPECT_DOUBLE_EQ(snap.eval_seconds, 0.5);
    EXPECT_GT(snap.evals_per_second(), 0.0);

    tracker.on_run_end();
    snap = tracker.snapshot();
    EXPECT_FALSE(snap.running);
    EXPECT_EQ(snap.runs_completed, 1u);
    EXPECT_FALSE(snap.eta_seconds().has_value());  // not running => no ETA
}

TEST(ObsProgress, EtaRequiresMeasurablePace)
{
    ProgressSnapshot snap;
    snap.running = true;
    snap.units_total = 100;
    snap.units_done = 0;
    snap.run_elapsed_seconds = 2.0;
    EXPECT_FALSE(snap.eta_seconds().has_value());  // no units done yet

    snap.units_done = 25;
    const auto eta = snap.eta_seconds();
    ASSERT_TRUE(eta.has_value());
    EXPECT_DOUBLE_EQ(*eta, 6.0);  // 2s for 25 units => 6s for remaining 75

    // Resumed run: pace is computed over the units done *here*.
    snap.units_at_start = 20;
    const auto resumed_eta = snap.eta_seconds();
    ASSERT_TRUE(resumed_eta.has_value());
    EXPECT_DOUBLE_EQ(*resumed_eta, 30.0);  // 2s for 5 units => 30s for 75

    snap.units_done = snap.units_total;
    EXPECT_FALSE(snap.eta_seconds().has_value());  // finished
}

TEST(ObsProgress, JsonRendering)
{
    ProgressSnapshot snap;
    snap.engine = "ga";
    snap.running = true;
    snap.runs_started = 1;
    snap.units_done = 12;
    snap.units_total = 80;
    snap.have_best = true;
    snap.best = 123.5;
    snap.distinct_evals = 340;
    snap.eval_calls = 800;
    snap.cache_hits = 460;

    const std::string json = to_json(snap);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"engine\":\"ga\""), std::string::npos);
    EXPECT_NE(json.find("\"running\":true"), std::string::npos);
    EXPECT_NE(json.find("\"generation\":12"), std::string::npos);
    EXPECT_NE(json.find("\"generations_total\":80"), std::string::npos);
    EXPECT_NE(json.find("\"best\":123.5"), std::string::npos);
    EXPECT_NE(json.find("\"distinct_evals\":340"), std::string::npos);
    EXPECT_NE(json.find("\"cache_hit_rate\":0.57499999999999996"),
              std::string::npos);

    snap.have_best = false;
    EXPECT_NE(to_json(snap).find("\"best\":null"), std::string::npos);
}

TEST(ObsProgress, ProgressLineFormatting)
{
    ProgressSnapshot snap;
    snap.engine = "ga";
    snap.running = true;
    snap.runs_started = 1;
    snap.units_done = 12;
    snap.units_total = 80;
    snap.have_best = true;
    snap.best = 123.5;
    snap.distinct_evals = 340;
    snap.eval_calls = 800;
    snap.cache_hits = 460;
    snap.run_elapsed_seconds = 4.0;

    const std::string line = format_progress_line(snap);
    EXPECT_NE(line.find("ga gen 12/80"), std::string::npos);
    EXPECT_NE(line.find("best 123.5000"), std::string::npos);
    EXPECT_NE(line.find("evals 340 (85.0/s, 57.5% cached)"), std::string::npos);
    EXPECT_NE(line.find("eta "), std::string::npos);

    snap.running = false;
    snap.units_done = snap.units_total;
    EXPECT_NE(format_progress_line(snap).find("done"), std::string::npos);
}

// A GA run wired with a progress tracker leaves the tracker in exact
// agreement with the RunResult -- the /status acceptance contract.
TEST(ObsProgress, GaRunPopulatesTracker)
{
    const ParameterSpace space = toy_space();
    GaConfig cfg;
    cfg.generations = 12;
    cfg.seed = 2015;
    cfg.obs.progress = std::make_shared<ProgressTracker>();
    const GaEngine engine{space, cfg, Direction::maximize, sum_eval,
                          HintSet::none(space)};
    const RunResult result = engine.run();

    const ProgressSnapshot snap = cfg.obs.progress->snapshot();
    EXPECT_EQ(snap.engine, "ga");
    EXPECT_FALSE(snap.running);
    EXPECT_EQ(snap.runs_started, 1u);
    EXPECT_EQ(snap.runs_completed, 1u);
    EXPECT_EQ(snap.units_done, result.history.size());
    EXPECT_EQ(snap.units_total, cfg.generations);
    EXPECT_EQ(snap.distinct_evals, result.distinct_evals);
    EXPECT_EQ(snap.eval_calls, result.total_eval_calls);
    EXPECT_EQ(snap.cache_hits, result.total_eval_calls - result.distinct_evals);
    ASSERT_TRUE(result.best_eval.feasible);
    EXPECT_TRUE(snap.have_best);
    EXPECT_DOUBLE_EQ(snap.best, result.best_eval.value);
}

// Float formatting is unified through obs/format.hpp: /status must render
// `best` with the exact byte sequence the run_end trace event carries, even
// for doubles with no short decimal form.
TEST(ObsProgress, StatusBestMatchesRunEndRenderingBitForBit)
{
    // Golden: the classic non-representable sum renders with full round-trip
    // precision on both surfaces.
    const double awkward = 0.1 + 0.2;
    ProgressSnapshot golden;
    golden.have_best = true;
    golden.best = awkward;
    EXPECT_NE(to_json(golden).find("\"best\":0.30000000000000004"),
              std::string::npos);
    TraceEvent golden_end{"run_end"};
    golden_end.add("best", FieldValue{awkward});
    EXPECT_NE(to_jsonl(golden_end).find("\"best\":0.30000000000000004"),
              std::string::npos);

    // End to end: a traced GA run whose best value carries an awkward
    // fraction must render identically in the trace and in /status JSON.
    const ParameterSpace space = toy_space();
    GaConfig cfg;
    cfg.generations = 8;
    cfg.seed = 2015;
    auto sink = std::make_shared<MemorySink>();
    cfg.obs.tracer = Tracer{sink};
    cfg.obs.progress = std::make_shared<ProgressTracker>();
    const GaEngine engine{space, cfg, Direction::maximize,
                          [](const Genome& g) {
                              const Evaluation e = sum_eval(g);
                              return Evaluation{true, e.value + 0.1};
                          },
                          HintSet::none(space)};
    engine.run();

    const auto token_after = [](const std::string& text, const std::string& key) {
        const std::size_t at = text.find(key);
        EXPECT_NE(at, std::string::npos) << key << " in " << text;
        const std::size_t start = at + key.size();
        return text.substr(start, text.find_first_of(",}", start) - start);
    };
    const auto ends = sink->events_of("run_end");
    ASSERT_FALSE(ends.empty());
    const std::string trace_best = token_after(to_jsonl(ends.back()), "\"best\":");
    const std::string status_best =
        token_after(to_json(cfg.obs.progress->snapshot()), "\"best\":");
    EXPECT_EQ(trace_best, status_best);
    EXPECT_NE(trace_best.find('.'), std::string::npos);  // the 0.1 survived
}

// The tracker result must not depend on the worker count (same contract as
// the rest of the evaluation pipeline).
TEST(ObsProgressConcurrency, TrackerCountsAreWorkerCountIndependent)
{
    ProgressSnapshot snaps[2];
    const std::size_t workers[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        const ParameterSpace space = toy_space();
        GaConfig cfg;
        cfg.generations = 12;
        cfg.seed = 2015;
        cfg.eval_workers = workers[i];
        cfg.obs.progress = std::make_shared<ProgressTracker>();
        const GaEngine engine{space, cfg, Direction::maximize, sum_eval,
                              HintSet::none(space)};
        engine.run();
        snaps[i] = cfg.obs.progress->snapshot();
    }
    EXPECT_EQ(snaps[0].distinct_evals, snaps[1].distinct_evals);
    EXPECT_EQ(snaps[0].eval_calls, snaps[1].eval_calls);
    EXPECT_EQ(snaps[0].cache_hits, snaps[1].cache_hits);
    EXPECT_EQ(snaps[0].units_done, snaps[1].units_done);
    EXPECT_DOUBLE_EQ(snaps[0].best, snaps[1].best);
}

// Budgeted engines report distinct evaluations as their progress unit.
TEST(ObsProgress, BudgetedEnginesReportEvalUnits)
{
    const ParameterSpace space = toy_space();

    RandomSearchConfig rnd;
    rnd.max_distinct_evals = 40;
    rnd.obs.progress = std::make_shared<ProgressTracker>();
    RandomSearch{space, rnd, Direction::maximize, sum_eval}.run(7);
    ProgressSnapshot snap = rnd.obs.progress->snapshot();
    EXPECT_EQ(snap.engine, "random");
    EXPECT_EQ(snap.units_total, 40u);
    EXPECT_EQ(snap.units_done, snap.distinct_evals);
    EXPECT_EQ(snap.runs_completed, 1u);

    HillClimbConfig hc;
    hc.max_distinct_evals = 30;
    hc.obs.progress = std::make_shared<ProgressTracker>();
    HillClimber{space, hc, Direction::maximize, sum_eval, HintSet::none(space)}.run(7);
    snap = hc.obs.progress->snapshot();
    EXPECT_EQ(snap.engine, "hc");
    EXPECT_EQ(snap.units_done, snap.distinct_evals);
    EXPECT_GE(snap.units_done, 30u);
}

TEST(ObsProgress, HeartbeatWritesPeriodicLines)
{
    auto tracker = std::make_shared<ProgressTracker>();
    std::ostringstream out;
    ProgressHeartbeat heartbeat{tracker, 0.02, &out};

    // Quiet until a run starts.
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    tracker->on_run_start("ga", 10);
    tracker->on_units(3);
    tracker->on_wave(8, 8, 0.01);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    heartbeat.stop();

    const std::string text = out.str();
    EXPECT_NE(text.find("[nautilus] ga gen 3/10"), std::string::npos);
}

TEST(ObsProgress, HeartbeatStopIsIdempotent)
{
    auto tracker = std::make_shared<ProgressTracker>();
    std::ostringstream out;
    ProgressHeartbeat heartbeat{tracker, 10.0, &out};
    heartbeat.stop();
    heartbeat.stop();
    EXPECT_TRUE(out.str().empty());
}

}  // namespace
