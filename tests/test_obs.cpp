// Observability subsystem: metrics registry thread safety, trace event
// serialization round-trips, scoped-timer nesting, and the accounting
// contract between eval_wave events and the engines' RunResult numbers.

#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ga.hpp"

namespace nautilus {
namespace {

using obs::FieldValue;
using obs::MemorySink;
using obs::MetricsRegistry;
using obs::TraceEvent;
using obs::Tracer;

// ---- Metrics registry ------------------------------------------------------

TEST(ObsMetrics, CounterGaugeHistogramBasics)
{
    MetricsRegistry reg;
    obs::Counter& c = reg.counter("items");
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);

    reg.gauge("workers").set(4.0);
    EXPECT_DOUBLE_EQ(reg.gauge("workers").value(), 4.0);

    obs::Histogram& h = reg.histogram("lat", {1.0, 10.0});
    h.observe(0.5);
    h.observe(5.0);
    h.observe(100.0);  // overflow bucket
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 105.5);
    const auto counts = h.counts();
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
}

TEST(ObsMetrics, CreateOrGetReturnsSameInstrument)
{
    MetricsRegistry reg;
    obs::Counter& a = reg.counter("x");
    obs::Counter& b = reg.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);
}

TEST(ObsMetrics, KindMismatchThrows)
{
    MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
    EXPECT_THROW(reg.histogram("x", {1.0}), std::invalid_argument);
    reg.histogram("h", {1.0, 2.0});
    EXPECT_NO_THROW(reg.histogram("h", {1.0, 2.0}));
    EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), std::invalid_argument);
}

TEST(ObsMetrics, SnapshotAndTextDump)
{
    MetricsRegistry reg;
    reg.counter("b.count").add(7);
    reg.gauge("a.gauge").set(1.5);
    reg.histogram("c.hist", {1.0}).observe(0.5);

    const obs::MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].first, "b.count");
    EXPECT_EQ(snap.counters[0].second, 7u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(snap.gauges[0].second, 1.5);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 1u);

    std::ostringstream out;
    reg.write_text(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("b.count"), std::string::npos);
    EXPECT_NE(text.find("a.gauge"), std::string::npos);
    EXPECT_NE(text.find("c.hist"), std::string::npos);
}

// Registry create-or-get and instrument updates from many threads must be
// race-free (run under TSan in CI) and lose no increments.
TEST(ObsMetricsConcurrency, ConcurrentCreateAndUpdateIsExact)
{
    MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kIters = 2000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            for (int i = 0; i < kIters; ++i) {
                reg.counter("shared.counter").add();
                reg.histogram("shared.hist", {0.5, 1.0}).observe(0.25);
                reg.gauge("shared.gauge").set(static_cast<double>(i));
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(reg.counter("shared.counter").value(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(reg.histogram("shared.hist", {0.5, 1.0}).count(),
              static_cast<std::uint64_t>(kThreads) * kIters);
}

// ---- Trace events ----------------------------------------------------------

TEST(ObsTrace, EventSerializationRoundTrips)
{
    TraceEvent ev{"unit_test"};
    ev.t = 1.25;
    ev.add("flag", FieldValue{true})
        .add("neg", FieldValue{std::int64_t{-42}})
        .add("big", FieldValue{std::uint64_t{18446744073709551615ull}})
        .add("ratio", FieldValue{0.125})
        .add("whole", FieldValue{3.0})
        .add("name", "hello \"world\"\n\tend")
        .add("vec", FieldValue{std::vector<double>{1.0, -2.5, 0.0}});

    const std::string line = obs::to_jsonl(ev);
    const auto back = obs::parse_jsonl_line(line);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, "unit_test");
    EXPECT_DOUBLE_EQ(back->t, 1.25);
    ASSERT_EQ(back->fields.size(), ev.fields.size());
    EXPECT_EQ(std::get<bool>(*back->find("flag")), true);
    EXPECT_EQ(std::get<std::int64_t>(*back->find("neg")), -42);
    EXPECT_EQ(std::get<std::uint64_t>(*back->find("big")), 18446744073709551615ull);
    EXPECT_DOUBLE_EQ(std::get<double>(*back->find("ratio")), 0.125);
    // Whole-valued doubles must come back as doubles, not integers.
    EXPECT_DOUBLE_EQ(std::get<double>(*back->find("whole")), 3.0);
    EXPECT_EQ(std::get<std::string>(*back->find("name")), "hello \"world\"\n\tend");
    const auto& vec = std::get<std::vector<double>>(*back->find("vec"));
    EXPECT_EQ(vec, (std::vector<double>{1.0, -2.5, 0.0}));
}

TEST(ObsTrace, NonFiniteDoublesRoundTripAsNaN)
{
    TraceEvent ev{"nan_test"};
    ev.add("nan", FieldValue{std::nan("")})
        .add("inf", FieldValue{std::numeric_limits<double>::infinity()})
        .add("vec", FieldValue{std::vector<double>{1.0, std::nan("")}});
    const auto back = obs::parse_jsonl_line(obs::to_jsonl(ev));
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(std::isnan(std::get<double>(*back->find("nan"))));
    EXPECT_TRUE(std::isnan(std::get<double>(*back->find("inf"))));
    const auto& vec = std::get<std::vector<double>>(*back->find("vec"));
    ASSERT_EQ(vec.size(), 2u);
    EXPECT_DOUBLE_EQ(vec[0], 1.0);
    EXPECT_TRUE(std::isnan(vec[1]));
}

TEST(ObsTrace, ParserRejectsMalformedLines)
{
    EXPECT_FALSE(obs::parse_jsonl_line("").has_value());
    EXPECT_FALSE(obs::parse_jsonl_line("not json").has_value());
    EXPECT_FALSE(obs::parse_jsonl_line("{\"t\":0.0}").has_value());  // no type
    EXPECT_FALSE(obs::parse_jsonl_line("{\"type\":\"x\"").has_value());
    EXPECT_FALSE(obs::parse_jsonl_line("{\"type\":\"x\"} trailing").has_value());
    EXPECT_FALSE(obs::parse_jsonl_line("{\"type\":42}").has_value());
    EXPECT_TRUE(obs::parse_jsonl_line("{\"type\":\"x\"}").has_value());
}

TEST(ObsTrace, TypedLookupsHandleMissingAndMismatched)
{
    TraceEvent ev{"lookup"};
    ev.add("n", std::size_t{7}).add("s", "str");
    EXPECT_EQ(ev.unsigned_int("n").value(), 7u);
    EXPECT_DOUBLE_EQ(ev.number("n").value(), 7.0);
    EXPECT_FALSE(ev.number("s").has_value());
    EXPECT_FALSE(ev.unsigned_int("missing").has_value());
    EXPECT_EQ(ev.string("s").value(), "str");
    EXPECT_FALSE(ev.string("n").has_value());
}

TEST(ObsTrace, DisabledTracerIsANoOp)
{
    Tracer off;
    EXPECT_FALSE(off.enabled());
    off.emit(TraceEvent{"ignored"});  // must not crash
    obs::Instrumentation inst;
    EXPECT_FALSE(inst.tracing());
    EXPECT_EQ(inst.registry(), nullptr);
}

TEST(ObsTrace, MemorySinkCollectsAndFilters)
{
    auto sink = std::make_shared<MemorySink>();
    Tracer tracer{sink};
    ASSERT_TRUE(tracer.enabled());
    tracer.emit(TraceEvent{"a"});
    tracer.emit(TraceEvent{"b"});
    tracer.emit(TraceEvent{"a"});
    EXPECT_EQ(sink->size(), 3u);
    EXPECT_EQ(sink->events_of("a").size(), 2u);
    EXPECT_EQ(sink->events_of("b").size(), 1u);
    EXPECT_EQ(sink->events_of("c").size(), 0u);
    // Timestamps are monotone non-decreasing in emission order.
    const auto events = sink->events();
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].t, events[i - 1].t);
}

TEST(ObsTrace, JsonlFileSinkWritesParseableLines)
{
    const std::string path = testing::TempDir() + "obs_trace_test.jsonl";
    {
        auto sink = std::make_shared<obs::JsonlFileSink>(path);
        Tracer tracer{sink};
        TraceEvent ev{"file_test"};
        ev.add("k", std::size_t{1});
        tracer.emit(std::move(ev));
        tracer.emit(TraceEvent{"file_test"});
    }  // dtor flushes
    std::ifstream in{path};
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t parsed = 0;
    while (std::getline(in, line)) {
        const auto ev = obs::parse_jsonl_line(line);
        ASSERT_TRUE(ev.has_value()) << line;
        EXPECT_EQ(ev->type, "file_test");
        ++parsed;
    }
    EXPECT_EQ(parsed, 2u);
    std::remove(path.c_str());
}

TEST(ObsTrace, ScopedTimerReportsNesting)
{
    auto sink = std::make_shared<MemorySink>();
    Tracer tracer{sink};
    {
        obs::ScopedTimer outer{tracer, "outer"};
        EXPECT_EQ(outer.depth(), 1);
        {
            obs::ScopedTimer inner{tracer, "inner"};
            EXPECT_EQ(inner.depth(), 2);
        }
        obs::ScopedTimer sibling{tracer, "sibling"};
        EXPECT_EQ(sibling.depth(), 2);
    }
    const auto spans = sink->events_of("span");
    ASSERT_EQ(spans.size(), 3u);
    // Inner scopes close first.
    EXPECT_EQ(spans[0].string("name").value(), "inner");
    EXPECT_EQ(spans[1].string("name").value(), "sibling");
    EXPECT_EQ(spans[2].string("name").value(), "outer");
    EXPECT_EQ(spans[2].number("depth").value(), 1.0);
    EXPECT_EQ(spans[0].number("depth").value(), 2.0);
    for (const auto& s : spans) EXPECT_GE(s.number("seconds").value(), 0.0);

    // A disabled tracer's timer neither emits nor tracks depth.
    Tracer off;
    obs::ScopedTimer silent{off, "silent"};
    EXPECT_EQ(silent.depth(), 0);
    EXPECT_EQ(sink->events_of("span").size(), 3u);
}

// ---- Engine integration ----------------------------------------------------

ParameterSpace toy_space()
{
    ParameterSpace space;
    for (int i = 0; i < 4; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 7));
    return space;
}

Evaluation sum_eval(const Genome& g)
{
    double v = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
    return {true, v};
}

RunResult traced_ga_run(std::size_t workers, const std::shared_ptr<MemorySink>& sink,
                        const std::shared_ptr<MetricsRegistry>& reg)
{
    const ParameterSpace space = toy_space();
    GaConfig cfg;
    cfg.generations = 12;
    cfg.seed = 2015;
    cfg.eval_workers = workers;
    cfg.obs.tracer = Tracer{sink};
    cfg.obs.metrics = reg;
    const GaEngine engine{space, cfg, Direction::maximize, sum_eval,
                          HintSet::none(space)};
    return engine.run();
}

// The acceptance contract: summed per-wave fresh counts equal the run's
// distinct_evaluations() exactly, at any worker count, and the search result
// itself is identical with tracing on.
TEST(ObsGaIntegrationConcurrency, WaveAccountingMatchesRunResultAcrossWorkerCounts)
{
    std::vector<RunResult> results;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        auto sink = std::make_shared<MemorySink>();
        auto reg = std::make_shared<MetricsRegistry>();
        const RunResult result = traced_ga_run(workers, sink, reg);

        std::uint64_t fresh = 0;
        std::uint64_t items = 0;
        std::uint64_t hits = 0;
        for (const TraceEvent& ev : sink->events_of("eval_wave")) {
            fresh += ev.unsigned_int("fresh").value();
            items += ev.unsigned_int("size").value();
            hits += ev.unsigned_int("hits").value();
            EXPECT_EQ(ev.unsigned_int("workers").value(), workers);
        }
        EXPECT_EQ(fresh, result.distinct_evals);
        EXPECT_EQ(items, result.total_eval_calls);
        EXPECT_EQ(items - hits, fresh);

        // The metrics registry agrees with the trace.
        EXPECT_EQ(reg->counter("eval.fresh").value(), result.distinct_evals);
        EXPECT_EQ(reg->counter("eval.items").value(), result.total_eval_calls);
        EXPECT_EQ(reg->counter("ga.runs").value(), 1u);
        EXPECT_EQ(reg->counter("ga.generations").value(), result.history.size());

        // run_start / run_end bracket the run and repeat the accounting.
        ASSERT_EQ(sink->events_of("run_start").size(), 1u);
        const auto ends = sink->events_of("run_end");
        ASSERT_EQ(ends.size(), 1u);
        EXPECT_EQ(ends[0].unsigned_int("distinct_evals").value(), result.distinct_evals);
        EXPECT_EQ(ends[0].unsigned_int("total_calls").value(), result.total_eval_calls);
        EXPECT_EQ(sink->events_of("generation").size(), result.history.size());

        results.push_back(result);
    }
    // Determinism contract: identical results at 1 and 4 workers.
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].distinct_evals, results[1].distinct_evals);
    EXPECT_EQ(results[0].best_eval.value, results[1].best_eval.value);
    EXPECT_EQ(results[0].best_genome.genes(), results[1].best_genome.genes());
}

TEST(ObsGaIntegration, TracingDoesNotChangeSearchResults)
{
    const ParameterSpace space = toy_space();
    GaConfig cfg;
    cfg.generations = 12;
    cfg.seed = 99;
    const GaEngine plain{space, cfg, Direction::maximize, sum_eval, HintSet::none(space)};
    const RunResult untraced = plain.run();

    cfg.obs = obs::Instrumentation::with_sink(std::make_shared<MemorySink>());
    const GaEngine traced{space, cfg, Direction::maximize, sum_eval, HintSet::none(space)};
    const RunResult with_trace = traced.run();

    EXPECT_EQ(untraced.distinct_evals, with_trace.distinct_evals);
    EXPECT_EQ(untraced.best_eval.value, with_trace.best_eval.value);
    EXPECT_EQ(untraced.best_genome.genes(), with_trace.best_genome.genes());
}

TEST(ObsGaIntegration, BreedEventsClassifyGuidedDraws)
{
    const ParameterSpace space = toy_space();
    HintSet hints = HintSet::none(space);
    for (std::size_t p = 0; p < space.size(); ++p) {
        hints.param(p).importance = 50.0;
        hints.param(p).bias = 1.0;  // "increase the gene"
    }
    hints.set_confidence(0.8);

    auto sink = std::make_shared<MemorySink>();
    GaConfig cfg;
    cfg.generations = 10;
    cfg.seed = 3;
    cfg.obs = obs::Instrumentation::with_sink(sink);
    const GaEngine engine{space, cfg, Direction::maximize, sum_eval, hints};
    (void)engine.run();

    std::uint64_t bias = 0;
    std::uint64_t uniform = 0;
    std::uint64_t genes = 0;
    for (const TraceEvent& ev : sink->events_of("breed")) {
        bias += ev.unsigned_int("bias_draws").value();
        uniform += ev.unsigned_int("uniform_draws").value();
        genes += ev.unsigned_int("genes_mutated").value();
        const auto* imp = ev.find("importance");
        ASSERT_NE(imp, nullptr);
        EXPECT_EQ(std::get<std::vector<double>>(*imp).size(), space.size());
    }
    EXPECT_GT(genes, 0u);
    // With bias hints on every parameter at confidence 0.8, most mutation
    // draws are classified as bias-directed.
    EXPECT_GT(bias, uniform);
}

TEST(ObsEvalSummary, AggregatesAcrossRuns)
{
    const ParameterSpace space = toy_space();
    GaConfig cfg;
    cfg.generations = 6;
    cfg.seed = 11;
    const GaEngine engine{space, cfg, Direction::maximize, sum_eval, HintSet::none(space)};
    EvalSummary summary;
    (void)engine.run_many(3, &summary);
    EXPECT_EQ(summary.runs, 3u);
    EXPECT_GT(summary.distinct_evals, 0u);
    EXPECT_GE(summary.total_calls, summary.distinct_evals);
    const double rate = summary.cache_hit_rate();
    EXPECT_GE(rate, 0.0);
    EXPECT_LT(rate, 1.0);
    EXPECT_DOUBLE_EQ(EvalSummary{}.cache_hit_rate(), 0.0);
}

}  // namespace
}  // namespace nautilus
