// Lineage & hint attribution (DESIGN.md §11): recorder unit behavior, the
// zero-RNG-impact contract against every breed path, birth/draw conservation
// against breed events, survival of birth records under quarantine, resume
// reproducibility, and the guided-vs-unguided attribution acceptance test.

#include "obs/lineage.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/fault_injection.hpp"
#include "core/ga.hpp"
#include "core/local_search.hpp"
#include "core/nautilus.hpp"
#include "core/nsga2.hpp"
#include "noc/router_generator.hpp"

namespace nautilus {
namespace {

using obs::BirthOp;
using obs::GeneOrigin;
using obs::MemorySink;
using obs::TraceEvent;
using obs::Tracer;

ParameterSpace toy_space()
{
    ParameterSpace space;
    for (int i = 0; i < 4; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 7));
    return space;
}

Evaluation sum_eval(const Genome& g)
{
    double v = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
    return {true, v};
}

// Remove one "key":value pair from a flat JSON object rendering, so event
// lines can be compared modulo timestamps / resume bookkeeping.
std::string drop_field(std::string json, const std::string& key)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = json.find(needle);
    if (at == std::string::npos) return json;
    std::size_t end = json.find_first_of(",}", at + needle.size());
    if (end != std::string::npos && json[end] == ',')
        ++end;  // interior field: eat the trailing comma
    return json.erase(at, end - at);
}

std::string birth_line(const TraceEvent& ev)
{
    return drop_field(to_jsonl(ev), "t");
}

// ---- codes & names ----------------------------------------------------------

TEST(LineageOrigins, CodesAndNamesRoundTrip)
{
    const std::vector<GeneOrigin> all{
        GeneOrigin::fresh,   GeneOrigin::parent_a, GeneOrigin::parent_b,
        GeneOrigin::uniform, GeneOrigin::bias,     GeneOrigin::target,
        GeneOrigin::repair,
    };
    const std::string codes = obs::origin_codes(all);
    EXPECT_EQ(codes, "faxubtr");
    std::vector<GeneOrigin> back;
    ASSERT_TRUE(obs::origins_from_codes(codes, back));
    EXPECT_EQ(back, all);

    EXPECT_EQ(obs::origin_codes({}), "-");
    ASSERT_TRUE(obs::origins_from_codes("-", back));
    EXPECT_TRUE(back.empty());
    EXPECT_FALSE(obs::origins_from_codes("z", back));

    obs::BirthOp op;
    for (const char* name : {"init", "resume", "elite", "mutation", "crossover"}) {
        ASSERT_TRUE(obs::birth_op_from_name(name, op)) << name;
        EXPECT_STREQ(obs::birth_op_name(op), name);
    }
    EXPECT_FALSE(obs::birth_op_from_name("nope", op));
}

// ---- recorder ---------------------------------------------------------------

TEST(LineageRecorder, MintsDenseRecordsEmitsEventsAndSummarizes)
{
    auto sink = std::make_shared<MemorySink>();
    const Tracer tracer{sink};
    obs::LineageRecorder rec{&tracer, nullptr, "ga"};

    const std::uint64_t r0 = rec.on_root(0, BirthOp::init, 3);
    const std::uint64_t r1 = rec.on_root(0, BirthOp::init, 3);
    const std::uint64_t child = rec.on_child(
        r0, r1, /*crossed=*/true, 1,
        {GeneOrigin::parent_a, GeneOrigin::bias, GeneOrigin::parent_b});
    const std::uint64_t elite = rec.on_elite(child, 1);
    rec.on_improved(child);

    EXPECT_EQ(r0, 0u);
    EXPECT_EQ(r1, 1u);
    EXPECT_EQ(child, 2u);
    EXPECT_EQ(elite, 3u);
    EXPECT_EQ(rec.births(), 4u);

    const obs::BirthRecord* cr = rec.record(child);
    ASSERT_NE(cr, nullptr);
    EXPECT_EQ(cr->parent_a, r0);
    EXPECT_EQ(cr->parent_b, r1);
    EXPECT_EQ(cr->op, BirthOp::crossover);
    EXPECT_TRUE(cr->survived);  // elitism marks the copied parent survived
    EXPECT_TRUE(cr->improved);

    const obs::LineageSummary s = rec.finish(std::vector<std::uint64_t>{child});
    EXPECT_EQ(s.births, 4u);
    EXPECT_EQ(s.roots, 2u);
    EXPECT_EQ(s.elites, 1u);
    EXPECT_EQ(s.crossover_births, 1u);
    EXPECT_EQ(s.genes_bias, 1u);
    EXPECT_EQ(s.genes_inherited, 1u);
    EXPECT_EQ(s.genes_crossed, 1u);
    EXPECT_EQ(s.offspring_bias, 1u);
    EXPECT_EQ(s.improved_bias, 1u);
    ASSERT_TRUE(s.have_winner);
    EXPECT_EQ(s.winner, child);
    EXPECT_EQ(s.winner_count, 1u);
    EXPECT_EQ(s.winner_genes, 3u);
    EXPECT_EQ(s.winner_bias, 1u);
    EXPECT_EQ(s.winner_fresh, 2u);  // inherited genes walk back to init roots
    EXPECT_EQ(s.winner_depth, 1u);

    EXPECT_EQ(sink->events_of("birth").size(), 4u);
    const auto summaries = sink->events_of("lineage_summary");
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].string("engine").value_or(""), "ga");
    EXPECT_EQ(summaries[0].unsigned_int("births").value_or(0), 4u);
}

TEST(LineageRecorder, SnapshotRestoreRoundTrip)
{
    obs::LineageRecorder rec{nullptr, nullptr, "ga"};
    const std::uint64_t a = rec.on_root(0, BirthOp::init, 2);
    const std::uint64_t b =
        rec.on_child(a, obs::k_no_parent, false, 1,
                     {GeneOrigin::parent_a, GeneOrigin::uniform});
    rec.on_improved(b);

    const obs::LineageState state = rec.snapshot({b});
    EXPECT_EQ(state.next_id, 2u);
    EXPECT_EQ(state.last_improved, b);
    EXPECT_EQ(state.slot_ids, (std::vector<std::uint64_t>{b}));
    ASSERT_EQ(state.records.size(), 2u);

    obs::LineageRecorder fresh{nullptr, nullptr, "ga"};
    fresh.restore(state);
    EXPECT_EQ(fresh.births(), 2u);
    EXPECT_EQ(fresh.births_at_start(), 2u);
    EXPECT_EQ(fresh.last_improved(), b);
    const obs::BirthRecord* rb = fresh.record(b);
    ASSERT_NE(rb, nullptr);
    EXPECT_EQ(rb->parent_a, a);
    EXPECT_TRUE(rb->improved);

    const obs::LineageSummary s = fresh.finish(std::vector<std::uint64_t>{b});
    EXPECT_EQ(s.births, 2u);
    EXPECT_EQ(s.births_at_start, 2u);
    EXPECT_EQ(s.winner_uniform, 1u);
}

// ---- GA integration ---------------------------------------------------------

RunResult ga_run(GaConfig cfg, const std::shared_ptr<MemorySink>& sink)
{
    const ParameterSpace space = toy_space();
    if (sink != nullptr) cfg.obs.tracer = Tracer{sink};
    const GaEngine engine{space, cfg, Direction::maximize, sum_eval,
                          HintSet::none(space)};
    return engine.run();
}

GaConfig toy_cfg()
{
    GaConfig cfg;
    cfg.generations = 12;
    cfg.seed = 2015;
    return cfg;
}

// The tentpole contract: lineage recording never touches the RNG, so a run
// with a tracer, a live tracker, both, or neither — on either breed path —
// produces bit-identical results.
TEST(LineageGa, RecordingDrawsNothingFromTheRng)
{
    const RunResult plain = ga_run(toy_cfg(), nullptr);

    std::vector<RunResult> variants;
    for (const bool scalar : {false, true}) {
        for (const int mode : {1, 2, 3}) {  // 1=tracker, 2=tracer, 3=both
            GaConfig cfg = toy_cfg();
            cfg.scalar_breed = scalar;
            if (mode & 1) cfg.obs.lineage = std::make_shared<obs::LineageTracker>();
            variants.push_back(
                ga_run(cfg, mode & 2 ? std::make_shared<MemorySink>() : nullptr));
        }
    }
    GaConfig scalar_plain_cfg = toy_cfg();
    scalar_plain_cfg.scalar_breed = true;
    variants.push_back(ga_run(scalar_plain_cfg, nullptr));

    for (const RunResult& r : variants) {
        EXPECT_EQ(r.final_rng_state, plain.final_rng_state);
        EXPECT_DOUBLE_EQ(r.best_eval.value, plain.best_eval.value);
        EXPECT_EQ(r.distinct_evals, plain.distinct_evals);
        EXPECT_EQ(r.best_genome.key(), plain.best_genome.key());
    }
}

TEST(LineageGa, ScalarAndDataopBirthStreamsAreIdentical)
{
    auto dataop = std::make_shared<MemorySink>();
    auto scalar = std::make_shared<MemorySink>();
    ga_run(toy_cfg(), dataop);
    GaConfig cfg = toy_cfg();
    cfg.scalar_breed = true;
    ga_run(cfg, scalar);

    const auto births_a = dataop->events_of("birth");
    const auto births_b = scalar->events_of("birth");
    ASSERT_EQ(births_a.size(), births_b.size());
    ASSERT_FALSE(births_a.empty());
    for (std::size_t i = 0; i < births_a.size(); ++i)
        EXPECT_EQ(birth_line(births_a[i]), birth_line(births_b[i])) << "birth " << i;

    const auto sum_a = dataop->events_of("lineage_summary");
    const auto sum_b = scalar->events_of("lineage_summary");
    ASSERT_EQ(sum_a.size(), 1u);
    ASSERT_EQ(sum_b.size(), 1u);
    EXPECT_EQ(birth_line(sum_a[0]), birth_line(sum_b[0]));
}

// Conservation against the breed events: per generation, births equal the
// bred children plus elites, and per-origin gene counts equal the mutation
// draw tallies the breeding core reports.
TEST(LineageGa, BirthAccountingMatchesBreedEvents)
{
    auto sink = std::make_shared<MemorySink>();
    const RunResult result = ga_run(toy_cfg(), sink);

    struct GenTally {
        std::uint64_t births = 0, elites = 0, uniform = 0, bias = 0, target = 0;
    };
    std::map<std::uint64_t, GenTally> born;
    std::uint64_t roots = 0;
    std::uint64_t expected_id = 0;
    for (const TraceEvent& ev : sink->events_of("birth")) {
        EXPECT_EQ(ev.unsigned_int("id").value_or(~0ull), expected_id++);
        const std::string op = ev.string("op").value_or("");
        if (op == "init" || op == "resume") {
            ++roots;
            continue;
        }
        GenTally& t = born[ev.unsigned_int("gen").value_or(0)];
        ++t.births;
        if (op == "elite") ++t.elites;
        for (const char c : ev.string("origins").value_or("")) {
            if (c == 'u') ++t.uniform;
            if (c == 'b') ++t.bias;
            if (c == 't') ++t.target;
        }
    }
    EXPECT_EQ(roots, toy_cfg().population_size);

    const auto breeds = sink->events_of("breed");
    ASSERT_EQ(breeds.size(), born.size());
    for (const TraceEvent& ev : breeds) {
        const auto it = born.find(ev.unsigned_int("gen").value_or(~0ull));
        ASSERT_NE(it, born.end());
        const GenTally& t = it->second;
        EXPECT_EQ(t.births, ev.unsigned_int("children").value_or(0) +
                                ev.unsigned_int("elites").value_or(0));
        EXPECT_EQ(t.elites, ev.unsigned_int("elites").value_or(0));
        EXPECT_EQ(t.uniform, ev.unsigned_int("uniform_draws").value_or(0));
        EXPECT_EQ(t.bias, ev.unsigned_int("bias_draws").value_or(0));
        EXPECT_EQ(t.target, ev.unsigned_int("target_draws").value_or(0));
    }

    const auto summaries = sink->events_of("lineage_summary");
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].unsigned_int("births").value_or(0),
              toy_cfg().population_size * result.history.size());
}

// Satellite: a quarantined design point is still a born genome — fault
// tolerance must not punch holes in the birth ledger.
TEST(LineageGa, QuarantinedOffspringStillGetBirthRecords)
{
    GaConfig cfg = toy_cfg();
    cfg.fault.tolerate_failures = true;
    cfg.obs.lineage = std::make_shared<obs::LineageTracker>();
    auto sink = std::make_shared<MemorySink>();
    cfg.obs.tracer = Tracer{sink};

    FaultInjectionConfig fic;
    fic.fail_rate = 0.05;
    fic.permanent = true;  // retries cannot recover => quarantine path
    fic.seed = 0xfeed;
    const ParameterSpace space = toy_space();
    FaultInjectingEvaluator chaos{sum_eval, fic};
    const GaEngine engine{space, cfg, Direction::maximize, chaos.as_eval_fn(),
                          HintSet::none(space)};
    const RunResult result = engine.run();
    ASSERT_GE(result.fault.quarantined, 1u);

    // Every slot of every generation was recorded, dense and conserved.
    const auto births = sink->events_of("birth");
    EXPECT_EQ(births.size(), cfg.population_size * result.history.size());
    std::uint64_t expected_id = 0;
    for (const TraceEvent& ev : births)
        EXPECT_EQ(ev.unsigned_int("id").value_or(~0ull), expected_id++);

    const obs::LineageCounters counters = cfg.obs.lineage->counters();
    EXPECT_EQ(counters.births, births.size());
    EXPECT_TRUE(counters.have_last);
    EXPECT_EQ(counters.last.births, births.size());
}

// Satellite: --die-at-gen followed by resume yields the same lineage summary
// as the uninterrupted run (modulo births_at_start bookkeeping), at 1 and 4
// workers.
TEST(LineageGa, ResumeReproducesUninterruptedSummaries)
{
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        const std::string path = testing::TempDir() + "lineage_resume_w" +
                                 std::to_string(workers) + ".ckpt";

        auto uninterrupted = std::make_shared<MemorySink>();
        GaConfig full = toy_cfg();
        full.eval_workers = workers;
        ga_run(full, uninterrupted);

        GaConfig dying = toy_cfg();
        dying.eval_workers = workers;
        dying.checkpoint_path = path;
        dying.halt_at_generation = 5;
        const RunResult halted = ga_run(dying, std::make_shared<MemorySink>());
        ASSERT_TRUE(halted.halted);

        auto resumed_sink = std::make_shared<MemorySink>();
        GaConfig resumed_cfg = toy_cfg();
        resumed_cfg.eval_workers = workers;
        resumed_cfg.checkpoint_path = path;
        resumed_cfg.obs.tracer = Tracer{resumed_sink};
        const ParameterSpace space = toy_space();
        const GaEngine engine{space, resumed_cfg, Direction::maximize, sum_eval,
                              HintSet::none(space)};
        const RunResult resumed = engine.resume(path);
        std::remove(path.c_str());
        EXPECT_FALSE(resumed.halted);

        const auto full_sum = uninterrupted->events_of("lineage_summary");
        const auto resumed_sum = resumed_sink->events_of("lineage_summary");
        ASSERT_EQ(full_sum.size(), 1u) << "workers " << workers;
        ASSERT_EQ(resumed_sum.size(), 1u) << "workers " << workers;
        EXPECT_GT(resumed_sum[0].unsigned_int("births_at_start").value_or(0), 0u);
        const auto normalize = [](const TraceEvent& ev) {
            return drop_field(drop_field(to_jsonl(ev), "t"), "births_at_start");
        };
        EXPECT_EQ(normalize(resumed_sum[0]), normalize(full_sum[0]))
            << "workers " << workers;
    }
}

// ---- NSGA-II ----------------------------------------------------------------

TEST(LineageNsga2, BirthsCoverBroodAndWinnersAreTheFront)
{
    const ParameterSpace space = toy_space();
    MultiObjectiveConfig cfg;
    cfg.generations = 10;
    cfg.seed = 2015;
    auto sink = std::make_shared<MemorySink>();
    cfg.obs.tracer = Tracer{sink};
    cfg.obs.lineage = std::make_shared<obs::LineageTracker>();
    const MultiEvalFn eval =
        [](const Genome& g) -> std::optional<std::vector<double>> {
        return std::vector<double>{static_cast<double>(g.gene(0) + g.gene(1)),
                                   static_cast<double>(g.gene(2) + g.gene(3))};
    };
    const Nsga2Engine engine{space,
                             cfg,
                             {Direction::maximize, Direction::minimize},
                             eval,
                             HintSet::none(space)};
    const auto result = engine.run();

    const auto summaries = sink->events_of("lineage_summary");
    ASSERT_EQ(summaries.size(), 1u);
    const TraceEvent& s = summaries[0];
    EXPECT_EQ(s.string("engine").value_or(""), "nsga2");
    EXPECT_EQ(s.unsigned_int("winner_count").value_or(0), result.front.size());

    // births == roots + sum of per-generation brood sizes, and the birth id
    // stream is dense.
    std::uint64_t born = 0;
    for (const TraceEvent& ev : sink->events_of("generation"))
        born += ev.unsigned_int("born").value_or(0);
    const std::uint64_t roots = s.unsigned_int("roots").value_or(0);
    EXPECT_EQ(s.unsigned_int("births").value_or(0), roots + born);
    std::uint64_t expected_id = 0;
    for (const TraceEvent& ev : sink->events_of("birth"))
        EXPECT_EQ(ev.unsigned_int("id").value_or(~0ull), expected_id++);
    EXPECT_EQ(expected_id, roots + born);

    EXPECT_EQ(cfg.obs.lineage->counters().births, roots + born);
}

// ---- local search -----------------------------------------------------------

TEST(LineageLocalSearch, ChainsRecordWinners)
{
    const ParameterSpace space = toy_space();

    AnnealingConfig sa_cfg;
    sa_cfg.max_distinct_evals = 100;
    auto sa_sink = std::make_shared<MemorySink>();
    sa_cfg.obs.tracer = Tracer{sa_sink};
    SimulatedAnnealing{space, sa_cfg, Direction::maximize, sum_eval,
                       HintSet::none(space)}
        .run(7);
    const auto sa_sum = sa_sink->events_of("lineage_summary");
    ASSERT_EQ(sa_sum.size(), 1u);
    EXPECT_EQ(sa_sum[0].string("engine").value_or(""), "sa");
    EXPECT_GT(sa_sum[0].unsigned_int("births").value_or(0), 0u);
    EXPECT_EQ(sa_sum[0].unsigned_int("winner_count").value_or(0), 1u);
    EXPECT_GT(sa_sum[0].unsigned_int("survived").value_or(0), 0u);

    HillClimbConfig hc_cfg;
    hc_cfg.max_distinct_evals = 100;
    auto hc_sink = std::make_shared<MemorySink>();
    hc_cfg.obs.tracer = Tracer{hc_sink};
    HillClimber{space, hc_cfg, Direction::maximize, sum_eval, HintSet::none(space)}
        .run(7);
    const auto hc_sum = hc_sink->events_of("lineage_summary");
    ASSERT_EQ(hc_sum.size(), 1u);
    EXPECT_EQ(hc_sum[0].string("engine").value_or(""), "hc");
    EXPECT_GT(hc_sum[0].unsigned_int("births").value_or(0), 0u);
    EXPECT_EQ(hc_sum[0].unsigned_int("winner_count").value_or(0), 1u);
}

// ---- acceptance: attribution separates guided from unguided search ----------

obs::LineageSummary router_run_summary(GuidanceLevel level)
{
    noc::RouterGenerator generator;
    const ip::Metric metric = ip::Metric::freq_mhz;
    GaConfig cfg;
    cfg.generations = 20;
    cfg.seed = 2015;
    cfg.obs.lineage = std::make_shared<obs::LineageTracker>();
    const HintSet hints =
        level == GuidanceLevel::none
            ? HintSet::none(generator.space())
            : apply_guidance(generator.author_hints(metric), Direction::maximize,
                             level);
    const GaEngine engine{generator.space(), cfg, Direction::maximize,
                          generator.metric_eval(metric), hints};
    engine.run();
    const obs::LineageCounters counters = cfg.obs.lineage->counters();
    EXPECT_TRUE(counters.have_last);
    return counters.last;
}

// The paper's claim, made checkable per-run: with strong hints the winning
// genome's mutated genes trace back to bias/target draws; without hints every
// mutated gene is a uniform draw.
TEST(LineageAcceptance, GuidedRunsAttributeWinnerGenesToHints)
{
    const obs::LineageSummary guided = router_run_summary(GuidanceLevel::strong);
    const obs::LineageSummary unguided = router_run_summary(GuidanceLevel::none);

    EXPECT_GT(guided.offspring_bias + guided.offspring_target, 0u);
    EXPECT_EQ(unguided.offspring_bias + unguided.offspring_target, 0u);
    EXPECT_EQ(unguided.genes_bias + unguided.genes_target, 0u);

    ASSERT_TRUE(guided.have_winner);
    ASSERT_TRUE(unguided.have_winner);
    const auto hint_share = [](const obs::LineageSummary& s) {
        const std::uint64_t mutated =
            s.winner_bias + s.winner_target + s.winner_uniform;
        return mutated == 0
                   ? 0.0
                   : static_cast<double>(s.winner_bias + s.winner_target) /
                         static_cast<double>(mutated);
    };
    EXPECT_GT(guided.winner_bias + guided.winner_target, 0u);
    EXPECT_GT(hint_share(guided), hint_share(unguided));
    EXPECT_EQ(unguided.winner_bias + unguided.winner_target, 0u);
}

}  // namespace
}  // namespace nautilus
