#include "core/random_search.hpp"

#include <gtest/gtest.h>

#include "core/genome.hpp"

namespace nautilus {
namespace {

ParameterSpace rs_space()
{
    ParameterSpace space;
    space.add("a", ParamDomain::int_range(0, 9));
    space.add("b", ParamDomain::int_range(0, 9));
    return space;
}

Evaluation sum_eval(const Genome& g)
{
    return {true, static_cast<double>(g.gene(0) + g.gene(1))};
}

TEST(RandomSearch, ConstructionValidation)
{
    const auto space = rs_space();
    const ParameterSpace empty;
    EXPECT_THROW(RandomSearch(empty, RandomSearchConfig{}, Direction::maximize, sum_eval),
                 std::invalid_argument);
    EXPECT_THROW(RandomSearch(space, RandomSearchConfig{}, Direction::maximize, EvalFn{}),
                 std::invalid_argument);
    RandomSearchConfig zero;
    zero.max_distinct_evals = 0;
    EXPECT_THROW(RandomSearch(space, zero, Direction::maximize, sum_eval),
                 std::invalid_argument);
}

TEST(RandomSearch, RespectsDistinctBudget)
{
    const auto space = rs_space();
    RandomSearchConfig cfg;
    cfg.max_distinct_evals = 25;
    const RandomSearch rs{space, cfg, Direction::maximize, sum_eval};
    const Curve c = rs.run(1);
    EXPECT_LE(c.final_evals(), 25.0);
}

TEST(RandomSearch, CurveIsMonotoneImproving)
{
    const auto space = rs_space();
    RandomSearchConfig cfg;
    cfg.max_distinct_evals = 60;
    const RandomSearch rs{space, cfg, Direction::maximize, sum_eval};
    const Curve c = rs.run(2);
    double prev = -1.0;
    for (const auto& p : c.points()) {
        EXPECT_GE(p.best, prev);
        prev = p.best;
    }
}

TEST(RandomSearch, ExhaustsSmallSpaces)
{
    const auto space = rs_space();  // 100 points
    RandomSearchConfig cfg;
    cfg.max_distinct_evals = 100;
    const RandomSearch rs{space, cfg, Direction::maximize, sum_eval};
    const Curve c = rs.run(3);
    // With enough draws it should find the optimum (18).
    EXPECT_DOUBLE_EQ(c.final_best(), 18.0);
}

TEST(RandomSearch, DeterministicPerSeed)
{
    const auto space = rs_space();
    RandomSearchConfig cfg;
    cfg.max_distinct_evals = 30;
    const RandomSearch rs{space, cfg, Direction::maximize, sum_eval};
    const Curve a = rs.run(7);
    const Curve b = rs.run(7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.points()[i].evals, b.points()[i].evals);
        EXPECT_DOUBLE_EQ(a.points()[i].best, b.points()[i].best);
    }
}

TEST(RandomSearch, SkipsInfeasiblePoints)
{
    const auto space = rs_space();
    const EvalFn eval = [](const Genome& g) -> Evaluation {
        if (g.gene(0) > 4) return {false, 0.0};
        return {true, static_cast<double>(g.gene(0))};
    };
    RandomSearchConfig cfg;
    cfg.max_distinct_evals = 100;
    const RandomSearch rs{space, cfg, Direction::maximize, eval};
    const Curve c = rs.run(5);
    EXPECT_DOUBLE_EQ(c.final_best(), 4.0);  // best feasible value
}

TEST(RandomSearch, RunManyAggregates)
{
    const auto space = rs_space();
    RandomSearchConfig cfg;
    cfg.max_distinct_evals = 20;
    const RandomSearch rs{space, cfg, Direction::minimize, sum_eval};
    const MultiRunCurve multi = rs.run_many(8);
    EXPECT_EQ(multi.runs(), 8u);
    EXPECT_THROW(rs.run_many(0), std::invalid_argument);
}

TEST(RandomSearch, ExpectedDrawsIsReciprocal)
{
    EXPECT_DOUBLE_EQ(RandomSearch::expected_draws(0.01), 100.0);
    EXPECT_DOUBLE_EQ(RandomSearch::expected_draws(1.0), 1.0);
    EXPECT_THROW(RandomSearch::expected_draws(0.0), std::invalid_argument);
    EXPECT_THROW(RandomSearch::expected_draws(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace nautilus
