#include "core/pareto.hpp"

#include <gtest/gtest.h>

namespace nautilus {
namespace {

const std::vector<Direction> min_max{Direction::minimize, Direction::maximize};
const std::vector<Direction> max_max{Direction::maximize, Direction::maximize};

ObjectivePoint pt(double a, double b, std::size_t tag = 0)
{
    return ObjectivePoint{tag, {a, b}};
}

TEST(Dominates, BasicCases)
{
    // minimize first, maximize second.
    EXPECT_TRUE(dominates(pt(1, 10), pt(2, 5), min_max));   // better in both
    EXPECT_TRUE(dominates(pt(1, 10), pt(1, 5), min_max));   // tie + better
    EXPECT_FALSE(dominates(pt(1, 10), pt(1, 10), min_max)); // identical
    EXPECT_FALSE(dominates(pt(1, 5), pt(2, 10), min_max));  // tradeoff
    EXPECT_FALSE(dominates(pt(2, 5), pt(1, 10), min_max));  // strictly worse
}

TEST(Dominates, IsAsymmetric)
{
    EXPECT_TRUE(dominates(pt(5, 5), pt(1, 1), max_max));
    EXPECT_FALSE(dominates(pt(1, 1), pt(5, 5), max_max));
}

TEST(Dominates, ArityMismatchThrows)
{
    const ObjectivePoint three{0, {1, 2, 3}};
    EXPECT_THROW(dominates(three, pt(1, 2), min_max), std::invalid_argument);
}

TEST(ParetoFront, ExtractsNonDominatedSet)
{
    const std::vector<ObjectivePoint> points{
        pt(1, 1, 0),   // front (cheapest)
        pt(2, 5, 1),   // front
        pt(3, 4, 2),   // dominated by 1
        pt(5, 9, 3),   // front (fastest)
        pt(4, 2, 4),   // dominated by 1 (worse both vs pt(2,5)? a=4>2, b=2<5 -> dominated)
    };
    const auto front = pareto_front(points, min_max);
    EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(ParetoFront, DuplicatesKeptOnce)
{
    const std::vector<ObjectivePoint> points{pt(1, 1), pt(1, 1), pt(1, 1)};
    const auto front = pareto_front(points, min_max);
    EXPECT_EQ(front, (std::vector<std::size_t>{0}));
}

TEST(ParetoFront, SinglePointAndEmpty)
{
    const std::vector<ObjectivePoint> one{pt(3, 3)};
    EXPECT_EQ(pareto_front(one, min_max).size(), 1u);
    const std::vector<ObjectivePoint> none;
    EXPECT_TRUE(pareto_front(none, min_max).empty());
}

TEST(ParetoFront, AllOnFrontWhenPureTradeoff)
{
    std::vector<ObjectivePoint> points;
    for (int i = 0; i < 10; ++i) points.push_back(pt(i, i));  // min a, max b: conflict
    EXPECT_EQ(pareto_front(points, min_max).size(), 10u);
}

TEST(Hypervolume2d, SinglePointRectangle)
{
    const std::vector<ObjectivePoint> front{pt(3, 4)};
    const double hv = hypervolume_2d(front, max_max, pt(0, 0));
    EXPECT_DOUBLE_EQ(hv, 12.0);
}

TEST(Hypervolume2d, TwoPointUnion)
{
    const std::vector<ObjectivePoint> front{pt(3, 1), pt(1, 2)};
    EXPECT_DOUBLE_EQ(hypervolume_2d(front, max_max, pt(0, 0)), 4.0);
}

TEST(Hypervolume2d, DominatedPointAddsNothing)
{
    const std::vector<ObjectivePoint> a{pt(3, 3)};
    const std::vector<ObjectivePoint> b{pt(3, 3), pt(2, 2)};
    EXPECT_DOUBLE_EQ(hypervolume_2d(a, max_max, pt(0, 0)),
                     hypervolume_2d(b, max_max, pt(0, 0)));
}

TEST(Hypervolume2d, MixedDirections)
{
    // minimize x, maximize y; reference dominated by all.
    const std::vector<ObjectivePoint> front{pt(2, 3)};
    // folded: x-extent = 10-2 = 8, y-extent = 3-0 = 3.
    EXPECT_DOUBLE_EQ(hypervolume_2d(front, min_max, pt(10, 0)), 24.0);
}

TEST(Hypervolume2d, Validation)
{
    const std::vector<ObjectivePoint> front{pt(1, 1)};
    const std::vector<Direction> three{Direction::maximize, Direction::maximize,
                                       Direction::maximize};
    EXPECT_THROW(hypervolume_2d(front, three, pt(0, 0)), std::invalid_argument);
    // Reference not dominated:
    EXPECT_THROW(hypervolume_2d(front, max_max, pt(2, 0)), std::invalid_argument);
    EXPECT_DOUBLE_EQ(hypervolume_2d({}, max_max, pt(0, 0)), 0.0);
}

TEST(FrontCoverage, FullAndPartial)
{
    const std::vector<ObjectivePoint> reference{pt(1, 1), pt(2, 2)};
    const std::vector<ObjectivePoint> superior{pt(3, 3)};
    EXPECT_DOUBLE_EQ(front_coverage(superior, reference, max_max), 1.0);
    const std::vector<ObjectivePoint> partial{pt(1, 1)};
    EXPECT_DOUBLE_EQ(front_coverage(partial, reference, max_max), 0.5);
    const std::vector<ObjectivePoint> nothing;
    EXPECT_DOUBLE_EQ(front_coverage(nothing, reference, max_max), 0.0);
    EXPECT_THROW(front_coverage(superior, {}, max_max), std::invalid_argument);
}

TEST(WeightedSum, FoldsAndNormalizes)
{
    const std::vector<double> weights{1.0, 1.0};
    const std::vector<double> scales{10.0, 100.0};
    // minimize first (so it contributes negatively), maximize second.
    const double s = weighted_sum(pt(5, 50), min_max, weights, scales);
    EXPECT_DOUBLE_EQ(s, -0.5 + 0.5);
}

TEST(WeightedSum, RespectsWeights)
{
    const std::vector<double> scales{1.0, 1.0};
    const std::vector<double> area_heavy{0.9, 0.1};
    const std::vector<double> tput_heavy{0.1, 0.9};
    // Candidate A: cheap; candidate B: fast.
    const ObjectivePoint a = pt(1, 2);
    const ObjectivePoint b = pt(4, 9);
    EXPECT_GT(weighted_sum(a, min_max, area_heavy, scales),
              weighted_sum(b, min_max, area_heavy, scales));
    EXPECT_LT(weighted_sum(a, min_max, tput_heavy, scales),
              weighted_sum(b, min_max, tput_heavy, scales));
}

TEST(WeightedSum, Validation)
{
    const std::vector<double> weights{1.0, -1.0};
    const std::vector<double> scales{1.0, 1.0};
    EXPECT_THROW(weighted_sum(pt(1, 1), min_max, weights, scales), std::invalid_argument);
    const std::vector<double> bad_scale{1.0, 0.0};
    const std::vector<double> ok{1.0, 1.0};
    EXPECT_THROW(weighted_sum(pt(1, 1), min_max, ok, bad_scale), std::invalid_argument);
    const std::vector<double> short_w{1.0};
    EXPECT_THROW(weighted_sum(pt(1, 1), min_max, short_w, ok), std::invalid_argument);
}

class FrontSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(FrontSizeSweep, HypervolumeGrowsWithFrontSize)
{
    // Staircase fronts: each added point extends the dominated region.
    const int n = GetParam();
    std::vector<ObjectivePoint> front;
    double prev_hv = -1.0;
    for (int i = 0; i < n; ++i) {
        front.push_back(pt(i + 1, n - i));
        const double hv = hypervolume_2d(front, max_max, pt(0, 0));
        EXPECT_GT(hv, prev_hv);
        prev_hv = hv;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FrontSizeSweep, ::testing::Values(1, 2, 5, 12));

}  // namespace
}  // namespace nautilus
