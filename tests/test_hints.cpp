#include "core/hints.hpp"

#include <gtest/gtest.h>

namespace nautilus {
namespace {

ParameterSpace hint_space()
{
    ParameterSpace space;
    space.add("size", ParamDomain::pow2(2, 6));
    space.add("mode", ParamDomain::categorical({"a", "b", "c"}, /*ordered=*/true));
    space.add("raw", ParamDomain::categorical({"p", "q"}));  // unordered
    return space;
}

TEST(HintSet, NoneIsBaseline)
{
    const auto space = hint_space();
    const HintSet h = HintSet::none(space);
    EXPECT_TRUE(h.is_baseline());
    EXPECT_EQ(h.size(), 3u);
    EXPECT_NO_THROW(h.validate(space));
}

TEST(HintSet, NonzeroConfidenceWithHintsIsNotBaseline)
{
    const auto space = hint_space();
    HintSet h = HintSet::none(space);
    h.param(0).importance = 50.0;
    EXPECT_TRUE(h.is_baseline());  // zero confidence neutralizes everything
    h.set_confidence(0.5);
    EXPECT_FALSE(h.is_baseline());  // hints present and trusted
}

TEST(HintSet, ValidateSizeMismatch)
{
    const auto space = hint_space();
    const HintSet h{std::vector<ParamHints>(2), 0.5};
    EXPECT_THROW(h.validate(space), std::invalid_argument);
}

TEST(HintSet, ValidateImportanceRange)
{
    const auto space = hint_space();
    HintSet h = HintSet::none(space);
    h.param(0).importance = 0.5;
    EXPECT_THROW(h.validate(space), std::invalid_argument);
    h.param(0).importance = 101.0;
    EXPECT_THROW(h.validate(space), std::invalid_argument);
    h.param(0).importance = 100.0;
    EXPECT_NO_THROW(h.validate(space));
}

TEST(HintSet, ValidateDecayRange)
{
    const auto space = hint_space();
    HintSet h = HintSet::none(space);
    h.param(0).importance_decay = -0.1;
    EXPECT_THROW(h.validate(space), std::invalid_argument);
    h.param(0).importance_decay = 1.1;
    EXPECT_THROW(h.validate(space), std::invalid_argument);
}

TEST(HintSet, ValidateBiasRange)
{
    const auto space = hint_space();
    HintSet h = HintSet::none(space);
    h.param(0).bias = 1.5;
    EXPECT_THROW(h.validate(space), std::invalid_argument);
    h.param(0).bias = -1.0;
    EXPECT_NO_THROW(h.validate(space));
}

TEST(HintSet, BiasAndTargetMutuallyExclusive)
{
    const auto space = hint_space();
    HintSet h = HintSet::none(space);
    h.param(0).bias = 0.5;
    h.param(0).target = 8.0;
    EXPECT_THROW(h.validate(space), std::invalid_argument);
}

TEST(HintSet, BiasOnUnorderedDomainRejected)
{
    const auto space = hint_space();
    HintSet h = HintSet::none(space);
    h.param(2).bias = 0.5;
    EXPECT_THROW(h.validate(space), std::invalid_argument);
}

TEST(HintSet, TargetOnOrderedCategoricalAllowed)
{
    const auto space = hint_space();
    HintSet h = HintSet::none(space);
    h.param(1).target = 1.0;  // index-valued target on ordered categorical
    EXPECT_NO_THROW(h.validate(space));
}

TEST(HintSet, TargetOutsideDomainRejected)
{
    const auto space = hint_space();
    HintSet h = HintSet::none(space);
    h.param(0).target = 128.0;  // domain is 4..64
    EXPECT_THROW(h.validate(space), std::invalid_argument);
    h.param(0).target = 64.0;
    EXPECT_NO_THROW(h.validate(space));
}

TEST(HintSet, StepScaleValidation)
{
    const auto space = hint_space();
    HintSet h = HintSet::none(space);
    h.param(0).step_scale = 0.0;
    EXPECT_THROW(h.validate(space), std::invalid_argument);
    h.param(0).step_scale = 1.0;
    EXPECT_NO_THROW(h.validate(space));
}

TEST(HintSet, ConfidenceRange)
{
    const auto space = hint_space();
    HintSet h = HintSet::none(space);
    EXPECT_THROW(h.set_confidence(-0.1), std::invalid_argument);
    EXPECT_THROW(h.set_confidence(1.1), std::invalid_argument);
    h.set_confidence(1.0);
    EXPECT_DOUBLE_EQ(h.confidence(), 1.0);
}

TEST(HintSet, NegatedBiasFlipsOnlyBias)
{
    const auto space = hint_space();
    HintSet h = HintSet::none(space);
    h.param(0).bias = 0.7;
    h.param(0).importance = 40.0;
    h.param(1).target = 2.0;
    const HintSet n = h.negated_bias();
    EXPECT_DOUBLE_EQ(*n.param(0).bias, -0.7);
    EXPECT_DOUBLE_EQ(n.param(0).importance, 40.0);
    EXPECT_DOUBLE_EQ(*n.param(1).target, 2.0);
}

TEST(HintSet, EffectiveImportanceNoDecay)
{
    const auto space = hint_space();
    HintSet h = HintSet::none(space);
    h.param(0).importance = 80.0;
    EXPECT_DOUBLE_EQ(h.effective_importance(0, 0), 80.0);
    EXPECT_DOUBLE_EQ(h.effective_importance(0, 100), 80.0);
}

TEST(HintSet, EffectiveImportanceDecaysTowardOne)
{
    const auto space = hint_space();
    HintSet h = HintSet::none(space);
    h.param(0).importance = 100.0;
    h.param(0).importance_decay = 0.9;
    double prev = h.effective_importance(0, 0);
    EXPECT_DOUBLE_EQ(prev, 100.0);
    for (std::size_t gen = 1; gen <= 60; ++gen) {
        const double cur = h.effective_importance(0, gen);
        EXPECT_LT(cur, prev);
        EXPECT_GE(cur, 1.0);
        prev = cur;
    }
    EXPECT_NEAR(h.effective_importance(0, 500), 1.0, 1e-6);
}

TEST(HintSet, EffectiveImportanceZeroDecayDropsImmediately)
{
    const auto space = hint_space();
    HintSet h = HintSet::none(space);
    h.param(0).importance = 100.0;
    h.param(0).importance_decay = 0.0;
    EXPECT_DOUBLE_EQ(h.effective_importance(0, 0), 100.0);  // 0^0 == 1
    EXPECT_DOUBLE_EQ(h.effective_importance(0, 1), 1.0);
}

TEST(MergeHints, RejectsBadInput)
{
    const auto space = hint_space();
    const HintSet a = HintSet::none(space);
    EXPECT_THROW(merge_hints({}), std::invalid_argument);
    const std::vector<WeightedHintSet> null_comp{{nullptr, 1.0}};
    EXPECT_THROW(merge_hints(null_comp), std::invalid_argument);
    const std::vector<WeightedHintSet> zero_weight{{&a, 0.0}};
    EXPECT_THROW(merge_hints(zero_weight), std::invalid_argument);
}

TEST(MergeHints, WeightedBiasAverage)
{
    const auto space = hint_space();
    HintSet a = HintSet::none(space);
    HintSet b = HintSet::none(space);
    a.param(0).bias = 1.0;
    b.param(0).bias = -1.0;
    const std::vector<WeightedHintSet> parts{{&a, 3.0}, {&b, 1.0}};
    const HintSet m = merge_hints(parts);
    EXPECT_NEAR(*m.param(0).bias, 0.5, 1e-12);
}

TEST(MergeHints, ImportanceWeightedMeanAndDecayMin)
{
    const auto space = hint_space();
    HintSet a = HintSet::none(space);
    HintSet b = HintSet::none(space);
    a.param(0).importance = 100.0;
    a.param(0).importance_decay = 0.9;
    b.param(0).importance = 1.0;
    b.param(0).importance_decay = 0.99;
    const std::vector<WeightedHintSet> parts{{&a, 1.0}, {&b, 1.0}};
    const HintSet m = merge_hints(parts);
    EXPECT_NEAR(m.param(0).importance, 50.5, 1e-9);
    EXPECT_DOUBLE_EQ(m.param(0).importance_decay, 0.9);
}

TEST(MergeHints, AgreeingTargetSurvives)
{
    const auto space = hint_space();
    HintSet a = HintSet::none(space);
    HintSet b = HintSet::none(space);
    a.param(0).target = 16.0;
    b.param(0).target = 16.0;
    const std::vector<WeightedHintSet> parts{{&a, 1.0}, {&b, 1.0}};
    const HintSet m = merge_hints(parts);
    ASSERT_TRUE(m.param(0).target.has_value());
    EXPECT_DOUBLE_EQ(*m.param(0).target, 16.0);
}

TEST(MergeHints, ConflictingTargetsDropped)
{
    const auto space = hint_space();
    HintSet a = HintSet::none(space);
    HintSet b = HintSet::none(space);
    a.param(0).target = 16.0;
    b.param(0).target = 32.0;
    const std::vector<WeightedHintSet> parts{{&a, 1.0}, {&b, 1.0}};
    const HintSet m = merge_hints(parts);
    EXPECT_FALSE(m.param(0).target.has_value());
    EXPECT_FALSE(m.param(0).bias.has_value());
}

TEST(MergeHints, BiasWinsOverMixedTarget)
{
    const auto space = hint_space();
    HintSet a = HintSet::none(space);
    HintSet b = HintSet::none(space);
    a.param(0).bias = 0.8;
    b.param(0).target = 32.0;
    const std::vector<WeightedHintSet> parts{{&a, 1.0}, {&b, 1.0}};
    const HintSet m = merge_hints(parts);
    EXPECT_FALSE(m.param(0).target.has_value());
    ASSERT_TRUE(m.param(0).bias.has_value());
    EXPECT_NEAR(*m.param(0).bias, 0.4, 1e-12);
}

TEST(MergeHints, ConfidenceWeightedMean)
{
    const auto space = hint_space();
    const HintSet a{std::vector<ParamHints>(3), 0.8};
    const HintSet b{std::vector<ParamHints>(3), 0.2};
    const std::vector<WeightedHintSet> parts{{&a, 1.0}, {&b, 3.0}};
    EXPECT_NEAR(merge_hints(parts).confidence(), 0.35, 1e-12);
}

TEST(MergeHints, SizeMismatchRejected)
{
    const HintSet a{std::vector<ParamHints>(3), 0.0};
    const HintSet b{std::vector<ParamHints>(2), 0.0};
    const std::vector<WeightedHintSet> parts{{&a, 1.0}, {&b, 1.0}};
    EXPECT_THROW(merge_hints(parts), std::invalid_argument);
}

class DecaySweep : public ::testing::TestWithParam<double> {};

TEST_P(DecaySweep, EffectiveImportanceIsMonotoneNonIncreasing)
{
    ParameterSpace space;
    space.add("p", ParamDomain::boolean());
    HintSet h = HintSet::none(space);
    h.param(0).importance = 64.0;
    h.param(0).importance_decay = GetParam();
    double prev = h.effective_importance(0, 0);
    for (std::size_t gen = 1; gen < 100; ++gen) {
        const double cur = h.effective_importance(0, gen);
        EXPECT_LE(cur, prev + 1e-12);
        EXPECT_GE(cur, 1.0 - 1e-12);
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(Decays, DecaySweep, ::testing::Values(0.0, 0.5, 0.9, 0.99, 1.0));

}  // namespace
}  // namespace nautilus
