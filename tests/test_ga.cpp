#include "core/ga.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nautilus {
namespace {

// A 4-parameter toy space with a known optimum at all-max indices.
ParameterSpace toy_space()
{
    ParameterSpace space;
    for (int i = 0; i < 4; ++i)
        space.add("p" + std::to_string(i), ParamDomain::int_range(0, 7));
    return space;
}

// Separable objective: sum of gene values (max 28 at all-7).
Evaluation sum_eval(const Genome& g)
{
    double v = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) v += g.gene(i);
    return {true, v};
}

GaConfig fast_config(std::size_t generations = 30)
{
    GaConfig cfg;
    cfg.generations = generations;
    cfg.seed = 7;
    return cfg;
}

TEST(GaConfig, ValidationCatchesBadSettings)
{
    GaConfig cfg;
    cfg.population_size = 1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = GaConfig{};
    cfg.generations = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = GaConfig{};
    cfg.mutation_rate = 1.5;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = GaConfig{};
    cfg.crossover_rate = -0.1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = GaConfig{};
    cfg.elitism = cfg.population_size;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    EXPECT_NO_THROW(GaConfig{}.validate());
}

TEST(GaEngine, RejectsBadConstruction)
{
    const auto space = toy_space();
    const ParameterSpace empty;
    EXPECT_THROW(GaEngine(empty, GaConfig{}, Direction::maximize, sum_eval,
                          HintSet::none(empty)),
                 std::invalid_argument);
    EXPECT_THROW(GaEngine(space, GaConfig{}, Direction::maximize, EvalFn{},
                          HintSet::none(space)),
                 std::invalid_argument);
    // Hints sized for a different space.
    EXPECT_THROW(GaEngine(space, GaConfig{}, Direction::maximize, sum_eval,
                          HintSet{std::vector<ParamHints>(2), 0.0}),
                 std::invalid_argument);
}

TEST(GaEngine, SameSeedIsBitReproducible)
{
    const auto space = toy_space();
    const GaEngine engine{space, fast_config(), Direction::maximize, sum_eval,
                          HintSet::none(space)};
    const RunResult a = engine.run(123);
    const RunResult b = engine.run(123);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.history[i].best, b.history[i].best);
        EXPECT_EQ(a.history[i].distinct_evals, b.history[i].distinct_evals);
    }
    EXPECT_EQ(a.best_genome, b.best_genome);
}

TEST(GaEngine, DifferentSeedsDiffer)
{
    const auto space = toy_space();
    const GaEngine engine{space, fast_config(), Direction::maximize, sum_eval,
                          HintSet::none(space)};
    const RunResult a = engine.run(1);
    const RunResult b = engine.run(2);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.history.size(); ++i)
        any_diff |= a.history[i].distinct_evals != b.history[i].distinct_evals;
    EXPECT_TRUE(any_diff);
}

TEST(GaEngine, BestSoFarIsMonotone)
{
    const auto space = toy_space();
    const GaEngine engine{space, fast_config(), Direction::maximize, sum_eval,
                          HintSet::none(space)};
    const RunResult r = engine.run();
    for (std::size_t i = 1; i < r.history.size(); ++i)
        EXPECT_GE(r.history[i].best_so_far, r.history[i - 1].best_so_far);
}

TEST(GaEngine, ElitismNeverLosesTheBest)
{
    const auto space = toy_space();
    GaConfig cfg = fast_config(40);
    cfg.elitism = 1;
    const GaEngine engine{space, cfg, Direction::maximize, sum_eval,
                          HintSet::none(space)};
    const RunResult r = engine.run();
    // With elitism the per-generation best never regresses either.
    for (std::size_t i = 1; i < r.history.size(); ++i)
        EXPECT_GE(r.history[i].best + 1e-12, r.history[i - 1].best);
}

TEST(GaEngine, ConvergesOnSeparableMaximization)
{
    const auto space = toy_space();
    const GaEngine engine{space, fast_config(60), Direction::maximize, sum_eval,
                          HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_GE(r.best_eval.value, 26.0);  // near the optimum of 28
}

TEST(GaEngine, ConvergesOnMinimization)
{
    const auto space = toy_space();
    const GaEngine engine{space, fast_config(60), Direction::minimize, sum_eval,
                          HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_LE(r.best_eval.value, 2.0);  // near the optimum of 0
}

TEST(GaEngine, BestGenomeMatchesBestEval)
{
    const auto space = toy_space();
    const GaEngine engine{space, fast_config(), Direction::maximize, sum_eval,
                          HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_DOUBLE_EQ(sum_eval(r.best_genome).value, r.best_eval.value);
}

TEST(GaEngine, DistinctEvalsNeverExceedPopulationTimesGenerations)
{
    const auto space = toy_space();
    GaConfig cfg = fast_config(20);
    const GaEngine engine{space, cfg, Direction::maximize, sum_eval,
                          HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_LE(r.distinct_evals, cfg.population_size * cfg.generations);
    EXPECT_GE(r.distinct_evals, cfg.population_size);  // at least the first generation
}

TEST(GaEngine, CurveTracksHistory)
{
    const auto space = toy_space();
    const GaEngine engine{space, fast_config(), Direction::maximize, sum_eval,
                          HintSet::none(space)};
    const RunResult r = engine.run();
    ASSERT_FALSE(r.curve.empty());
    EXPECT_DOUBLE_EQ(r.curve.final_best(), r.history.back().best_so_far);
    EXPECT_DOUBLE_EQ(r.curve.final_evals(),
                     static_cast<double>(r.history.back().distinct_evals));
}

TEST(GaEngine, HandlesInfeasibleRegions)
{
    const auto space = toy_space();
    // Half the space (odd first gene) is infeasible.
    const EvalFn eval = [](const Genome& g) {
        if (g.gene(0) % 2 == 1) return Evaluation{false, 0.0};
        return sum_eval(g);
    };
    const GaEngine engine{space, fast_config(40), Direction::maximize, eval,
                          HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_TRUE(r.best_eval.feasible);
    EXPECT_EQ(r.best_genome.gene(0) % 2, 0u);
    EXPECT_GE(r.best_eval.value, 24.0);  // optimum 27 (gene0 = 6)
}

TEST(GaEngine, SurvivesFullyInfeasibleSpace)
{
    const auto space = toy_space();
    const EvalFn eval = [](const Genome&) { return Evaluation{false, 0.0}; };
    const GaEngine engine{space, fast_config(5), Direction::maximize, eval,
                          HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_TRUE(r.curve.empty());
    for (const auto& g : r.history) EXPECT_EQ(g.feasible, 0u);
}

TEST(GaEngine, GenerationStatsAreConsistent)
{
    const auto space = toy_space();
    const GaEngine engine{space, fast_config(), Direction::maximize, sum_eval,
                          HintSet::none(space)};
    const RunResult r = engine.run();
    for (const auto& g : r.history) {
        EXPECT_EQ(g.feasible, GaConfig{}.population_size);
        EXPECT_LE(g.worst, g.mean + 1e-9);
        EXPECT_LE(g.mean, g.best + 1e-9);
        EXPECT_LE(g.best, g.best_so_far + 1e-9);
    }
}

TEST(GaEngine, RunManyAggregatesRequestedRuns)
{
    const auto space = toy_space();
    const GaEngine engine{space, fast_config(10), Direction::maximize, sum_eval,
                          HintSet::none(space)};
    const MultiRunCurve multi = engine.run_many(5);
    EXPECT_EQ(multi.runs(), 5u);
    EXPECT_THROW(engine.run_many(0), std::invalid_argument);
}

TEST(GaEngine, ZeroConfidenceHintsMatchBaselineExactly)
{
    const auto space = toy_space();
    HintSet hints = HintSet::none(space);
    hints.param(0).importance = 90.0;
    hints.param(1).bias = 0.9;
    hints.set_confidence(0.0);  // zero trust: must behave exactly like baseline

    const GaEngine baseline{space, fast_config(), Direction::maximize, sum_eval,
                            HintSet::none(space)};
    const GaEngine guided{space, fast_config(), Direction::maximize, sum_eval, hints};
    const RunResult a = baseline.run(99);
    const RunResult b = guided.run(99);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.history[i].best, b.history[i].best);
        EXPECT_EQ(a.history[i].distinct_evals, b.history[i].distinct_evals);
    }
}

class GaKnobSweep : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(GaKnobSweep, RunsToCompletionAcrossKnobs)
{
    const auto [pop, rate] = GetParam();
    const auto space = toy_space();
    GaConfig cfg;
    cfg.population_size = pop;
    cfg.mutation_rate = rate;
    cfg.generations = 15;
    cfg.seed = 3;
    const GaEngine engine{space, cfg, Direction::maximize, sum_eval,
                          HintSet::none(space)};
    const RunResult r = engine.run();
    EXPECT_EQ(r.history.size(), 15u);
    EXPECT_TRUE(r.best_eval.feasible);
}

INSTANTIATE_TEST_SUITE_P(Knobs, GaKnobSweep,
                         ::testing::Combine(::testing::Values(2u, 5u, 10u, 30u),
                                            ::testing::Values(0.0, 0.1, 0.5, 1.0)));

}  // namespace
}  // namespace nautilus
