#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

namespace nautilus {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a{123};
    Rng b{123};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentSequences)
{
    Rng a{1};
    Rng b{2};
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next_u64() == b.next_u64()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r{0};
    std::set<std::uint64_t> values;
    for (int i = 0; i < 16; ++i) values.insert(r.next_u64());
    EXPECT_GT(values.size(), 10u);  // not stuck
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r{7};
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r{11};
    double sum = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r{13};
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng r{17};
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.uniform_int(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSinglePoint)
{
    Rng r{19};
    for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedBounds)
{
    Rng r{23};
    EXPECT_THROW(r.uniform_int(2, 1), std::invalid_argument);
}

// Property test over extreme bounds where the old `hi - lo` span computation
// overflowed int64 (undefined behavior).  Runs under UBSan in CI; every draw
// must also land inside the inclusive range.
TEST(Rng, UniformIntExtremeBoundsStayInRange)
{
    constexpr std::int64_t i64min = std::numeric_limits<std::int64_t>::min();
    constexpr std::int64_t i64max = std::numeric_limits<std::int64_t>::max();
    Rng r{101};
    for (int i = 0; i < 2000; ++i) {
        // hi - lo overflows signed for all of these.
        EXPECT_GE(r.uniform_int(-2, i64max), -2);
        EXPECT_LE(r.uniform_int(i64min, 2), 2);
        EXPECT_GE(r.uniform_int(i64min / 2 - 1, i64max), i64min / 2 - 1);
        // Full range: the unsigned span wraps to 0 (2^64 values).
        (void)r.uniform_int(i64min, i64max);
        // Two-value ranges hugging each end.
        const auto top = r.uniform_int(i64max - 1, i64max);
        EXPECT_GE(top, i64max - 1);
        const auto bottom = r.uniform_int(i64min, i64min + 1);
        EXPECT_LE(bottom, i64min + 1);
        EXPECT_EQ(r.uniform_int(i64max, i64max), i64max);
        EXPECT_EQ(r.uniform_int(i64min, i64min), i64min);
    }
}

TEST(Rng, UniformIntExtremeTwoValueRangesReachBothEndpoints)
{
    constexpr std::int64_t i64min = std::numeric_limits<std::int64_t>::min();
    constexpr std::int64_t i64max = std::numeric_limits<std::int64_t>::max();
    Rng r{103};
    bool top_lo = false, top_hi = false, bottom_lo = false, bottom_hi = false;
    for (int i = 0; i < 500; ++i) {
        const auto top = r.uniform_int(i64max - 1, i64max);
        top_lo |= top == i64max - 1;
        top_hi |= top == i64max;
        const auto bottom = r.uniform_int(i64min, i64min + 1);
        bottom_lo |= bottom == i64min;
        bottom_hi |= bottom == i64min + 1;
    }
    EXPECT_TRUE(top_lo);
    EXPECT_TRUE(top_hi);
    EXPECT_TRUE(bottom_lo);
    EXPECT_TRUE(bottom_hi);
}

TEST(Rng, UniformIntApproximatelyUniform)
{
    Rng r{29};
    std::vector<int> counts(6, 0);
    constexpr int n = 60000;
    for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(r.uniform_int(0, 5))];
    for (int c : counts) EXPECT_NEAR(c, n / 6.0, n / 6.0 * 0.1);
}

TEST(Rng, IndexBounds)
{
    Rng r{31};
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.index(17), 17u);
    EXPECT_THROW(r.index(0), std::invalid_argument);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng r{37};
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
        EXPECT_FALSE(r.bernoulli(-1.0));
        EXPECT_TRUE(r.bernoulli(2.0));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng r{41};
    int hits = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(Rng, NormalMoments)
{
    Rng r{43};
    double sum = 0.0;
    double sq = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.08);
}

TEST(Rng, NormalShifted)
{
    Rng r{47};
    double sum = 0.0;
    constexpr int n = 10000;
    for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.15);
}

TEST(Rng, WeightedIndexFollowsWeights)
{
    Rng r{53};
    const std::vector<double> weights{1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    constexpr int n = 40000;
    for (int i = 0; i < n; ++i) ++counts[r.weighted_index(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadWeights)
{
    Rng r{59};
    const std::vector<double> negative{1.0, -0.5};
    const std::vector<double> zeros{0.0, 0.0};
    EXPECT_THROW(r.weighted_index(negative), std::invalid_argument);
    EXPECT_THROW(r.weighted_index(zeros), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a{61};
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next_u64() == b.next_u64()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r{67};
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Hashing, Mix64IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
    EXPECT_NE(mix64(0), 0u);
}

TEST(Hashing, HashCombineOrderMatters)
{
    const auto a = hash_combine(hash_combine(1, 2), 3);
    const auto b = hash_combine(hash_combine(1, 3), 2);
    EXPECT_NE(a, b);
}

TEST(Hashing, SplitMix64AdvancesState)
{
    std::uint64_t s = 5;
    const auto v1 = splitmix64(s);
    const auto v2 = splitmix64(s);
    EXPECT_NE(v1, v2);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRangeAndVaries)
{
    Rng r{GetParam()};
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 256; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        seen.insert(r.next_u64());
    }
    EXPECT_GT(seen.size(), 250u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 2ull, 42ull, 1337ull,
                                           0xffffffffffffffffull, 0x8000000000000000ull));

}  // namespace
}  // namespace nautilus
