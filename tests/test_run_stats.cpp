#include "core/run_stats.hpp"

#include <gtest/gtest.h>

namespace nautilus {
namespace {

Curve make_curve(Direction dir, std::initializer_list<CurvePoint> points)
{
    Curve c{dir};
    for (const auto& p : points) c.append(p.evals, p.best);
    return c;
}

TEST(Curve, AppendEnforcesMonotonicity)
{
    Curve c{Direction::maximize};
    c.append(10, 5.0);
    EXPECT_THROW(c.append(5, 6.0), std::invalid_argument);   // evals decreased
    EXPECT_THROW(c.append(20, 4.0), std::invalid_argument);  // best regressed
    c.append(20, 6.0);
    EXPECT_EQ(c.size(), 2u);
}

TEST(Curve, AppendSameXKeepsBetterValue)
{
    Curve c{Direction::minimize};
    c.append(10, 5.0);
    c.append(10, 3.0);
    EXPECT_EQ(c.size(), 1u);
    EXPECT_DOUBLE_EQ(c.final_best(), 3.0);
}

TEST(Curve, ValueAtStepInterpolation)
{
    const Curve c = make_curve(Direction::maximize, {{10, 1.0}, {30, 2.0}, {50, 3.0}});
    EXPECT_FALSE(c.value_at(5).has_value());
    EXPECT_DOUBLE_EQ(*c.value_at(10), 1.0);
    EXPECT_DOUBLE_EQ(*c.value_at(29.9), 1.0);
    EXPECT_DOUBLE_EQ(*c.value_at(30), 2.0);
    EXPECT_DOUBLE_EQ(*c.value_at(1000), 3.0);
}

TEST(Curve, EvalsToReach)
{
    const Curve c = make_curve(Direction::maximize, {{10, 1.0}, {30, 2.0}, {50, 3.0}});
    EXPECT_DOUBLE_EQ(*c.evals_to_reach(1.5), 30.0);
    EXPECT_DOUBLE_EQ(*c.evals_to_reach(3.0), 50.0);
    EXPECT_FALSE(c.evals_to_reach(3.5).has_value());
    EXPECT_DOUBLE_EQ(*c.evals_to_reach(0.5), 10.0);
}

TEST(Curve, EvalsToReachMinimize)
{
    const Curve c = make_curve(Direction::minimize, {{10, 9.0}, {30, 4.0}});
    EXPECT_DOUBLE_EQ(*c.evals_to_reach(5.0), 30.0);
    EXPECT_FALSE(c.evals_to_reach(3.0).has_value());
}

TEST(Curve, EmptyCurveAccessorsThrow)
{
    const Curve c{Direction::maximize};
    EXPECT_THROW(c.final_best(), std::logic_error);
    EXPECT_THROW(c.final_evals(), std::logic_error);
}

TEST(MultiRunCurve, AddRunValidation)
{
    MultiRunCurve m{Direction::maximize};
    EXPECT_THROW(m.add_run(Curve{Direction::minimize}), std::invalid_argument);
    EXPECT_THROW(m.add_run(Curve{Direction::maximize}), std::invalid_argument);  // empty
    m.add_run(make_curve(Direction::maximize, {{1, 1.0}}));
    EXPECT_EQ(m.runs(), 1u);
    EXPECT_THROW(m.run(1), std::out_of_range);
}

TEST(MultiRunCurve, MeanCurveAveragesAcrossRuns)
{
    MultiRunCurve m{Direction::maximize};
    m.add_run(make_curve(Direction::maximize, {{10, 1.0}, {20, 3.0}}));
    m.add_run(make_curve(Direction::maximize, {{10, 2.0}, {20, 4.0}}));
    const auto mean = m.mean_curve({10.0, 20.0, 30.0});
    ASSERT_EQ(mean.size(), 3u);
    EXPECT_DOUBLE_EQ(mean[0].best, 1.5);
    EXPECT_DOUBLE_EQ(mean[1].best, 3.5);
    EXPECT_DOUBLE_EQ(mean[2].best, 3.5);  // runs hold final values
}

TEST(MultiRunCurve, MeanCurveSkipsNotYetStartedRuns)
{
    MultiRunCurve m{Direction::maximize};
    m.add_run(make_curve(Direction::maximize, {{5, 1.0}}));
    m.add_run(make_curve(Direction::maximize, {{15, 9.0}}));
    const auto mean = m.mean_curve({10.0});
    ASSERT_EQ(mean.size(), 1u);
    EXPECT_DOUBLE_EQ(mean[0].best, 1.0);  // only the first run has started
}

TEST(MultiRunCurve, DefaultGridSpansMaxEvals)
{
    MultiRunCurve m{Direction::maximize};
    m.add_run(make_curve(Direction::maximize, {{10, 1.0}, {100, 2.0}}));
    const auto grid = m.default_grid(11);
    ASSERT_EQ(grid.size(), 11u);
    EXPECT_DOUBLE_EQ(grid.front(), 0.0);
    EXPECT_DOUBLE_EQ(grid.back(), 100.0);
}

TEST(MultiRunCurve, ConvergenceCountsReachedRuns)
{
    MultiRunCurve m{Direction::maximize};
    m.add_run(make_curve(Direction::maximize, {{10, 1.0}, {20, 5.0}}));
    m.add_run(make_curve(Direction::maximize, {{10, 1.0}, {40, 5.0}}));
    m.add_run(make_curve(Direction::maximize, {{10, 1.0}}));  // never reaches
    const auto conv = m.evals_to_reach(5.0);
    EXPECT_EQ(conv.runs, 3u);
    EXPECT_EQ(conv.reached, 2u);
    EXPECT_DOUBLE_EQ(conv.mean_evals, 30.0);
}

TEST(MultiRunCurve, MeanCurveCrossing)
{
    MultiRunCurve m{Direction::maximize};
    m.add_run(make_curve(Direction::maximize, {{10, 2.0}, {20, 6.0}}));
    m.add_run(make_curve(Direction::maximize, {{10, 4.0}, {20, 8.0}}));
    // Mean curve: 3.0 at 10+, 7.0 at 20+.
    const auto cross = m.mean_curve_crossing(6.5);
    ASSERT_TRUE(cross.has_value());
    EXPECT_GE(*cross, 19.0);
    EXPECT_FALSE(m.mean_curve_crossing(9.0).has_value());
}

TEST(MultiRunCurve, FinalBestStatistics)
{
    MultiRunCurve m{Direction::minimize};
    m.add_run(make_curve(Direction::minimize, {{10, 4.0}}));
    m.add_run(make_curve(Direction::minimize, {{10, 2.0}}));
    EXPECT_DOUBLE_EQ(m.mean_final_best(), 3.0);
    EXPECT_DOUBLE_EQ(m.best_final_best(), 2.0);
}

TEST(MultiRunCurve, EmptyStatisticsThrow)
{
    const MultiRunCurve m{Direction::maximize};
    EXPECT_THROW(m.mean_final_best(), std::logic_error);
    EXPECT_THROW(m.best_final_best(), std::logic_error);
}

TEST(Curve, EvalsToReachOnEmptyCurve)
{
    const Curve c{Direction::maximize};
    EXPECT_FALSE(c.evals_to_reach(1.0).has_value());
    EXPECT_FALSE(c.value_at(10.0).has_value());
}

TEST(Curve, EvalsToReachThresholdNeverReached)
{
    const Curve max_c = make_curve(Direction::maximize, {{10, 1.0}, {20, 2.0}});
    EXPECT_FALSE(max_c.evals_to_reach(2.0001).has_value());
    const Curve min_c = make_curve(Direction::minimize, {{10, 5.0}, {20, 3.0}});
    EXPECT_FALSE(min_c.evals_to_reach(2.9999).has_value());
    // The exact final value still counts as reached.
    EXPECT_DOUBLE_EQ(*max_c.evals_to_reach(2.0), 20.0);
    EXPECT_DOUBLE_EQ(*min_c.evals_to_reach(3.0), 20.0);
}

TEST(Curve, SinglePointCurve)
{
    const Curve c = make_curve(Direction::maximize, {{25, 4.0}});
    EXPECT_DOUBLE_EQ(c.final_evals(), 25.0);
    EXPECT_DOUBLE_EQ(c.final_best(), 4.0);
    EXPECT_FALSE(c.value_at(24.9).has_value());
    EXPECT_DOUBLE_EQ(*c.value_at(25.0), 4.0);
    EXPECT_DOUBLE_EQ(*c.value_at(1e9), 4.0);
    EXPECT_DOUBLE_EQ(*c.evals_to_reach(4.0), 25.0);
    EXPECT_FALSE(c.evals_to_reach(4.5).has_value());
}

TEST(MultiRunCurve, MeanCurveDropsGridPointsBeforeAnyRunStarts)
{
    MultiRunCurve m{Direction::maximize};
    m.add_run(make_curve(Direction::maximize, {{20, 1.0}, {40, 3.0}}));
    m.add_run(make_curve(Direction::maximize, {{30, 2.0}}));
    // Grid points 5 and 10 precede every run's first evaluation: no mean is
    // defined there, so they are dropped rather than emitted as zeros.
    const auto mean = m.mean_curve({5.0, 10.0, 20.0, 30.0, 50.0});
    ASSERT_EQ(mean.size(), 3u);
    EXPECT_DOUBLE_EQ(mean[0].evals, 20.0);
    EXPECT_DOUBLE_EQ(mean[0].best, 1.0);   // only run 0 started
    EXPECT_DOUBLE_EQ(mean[1].best, 1.5);   // (1.0 + 2.0) / 2
    EXPECT_DOUBLE_EQ(mean[2].best, 2.5);   // (3.0 + 2.0) / 2
}

TEST(MultiRunCurve, MeanCurveOfSinglePointRuns)
{
    MultiRunCurve m{Direction::minimize};
    m.add_run(make_curve(Direction::minimize, {{10, 6.0}}));
    m.add_run(make_curve(Direction::minimize, {{10, 2.0}}));
    const auto mean = m.mean_curve({5.0, 10.0, 15.0});
    ASSERT_EQ(mean.size(), 2u);
    EXPECT_DOUBLE_EQ(mean[0].evals, 10.0);
    EXPECT_DOUBLE_EQ(mean[0].best, 4.0);
    EXPECT_DOUBLE_EQ(mean[1].best, 4.0);  // single points hold their value
    const auto conv = m.evals_to_reach(4.0);
    EXPECT_EQ(conv.reached, 1u);  // only the 2.0 run reaches 4.0
    EXPECT_DOUBLE_EQ(conv.mean_evals, 10.0);
}

TEST(MultiRunCurve, MeanCurveOnEmptyAggregateIsEmpty)
{
    const MultiRunCurve m{Direction::maximize};
    EXPECT_TRUE(m.mean_curve({1.0, 2.0}).empty());
    EXPECT_TRUE(m.default_grid().empty());
    const auto conv = m.evals_to_reach(1.0);
    EXPECT_EQ(conv.runs, 0u);
    EXPECT_EQ(conv.reached, 0u);
}

TEST(SpeedupAtThreshold, ComputesRatio)
{
    MultiRunCurve baseline{Direction::maximize};
    baseline.add_run(make_curve(Direction::maximize, {{100, 5.0}}));
    baseline.add_run(make_curve(Direction::maximize, {{300, 5.0}}));
    MultiRunCurve guided{Direction::maximize};
    guided.add_run(make_curve(Direction::maximize, {{50, 5.0}}));
    guided.add_run(make_curve(Direction::maximize, {{50, 5.0}}));
    const auto s = speedup_at_threshold(baseline, guided, 5.0);
    ASSERT_TRUE(s.has_value());
    EXPECT_DOUBLE_EQ(*s, 4.0);  // 200 / 50
}

TEST(SpeedupAtThreshold, RequiresMajorityReach)
{
    MultiRunCurve baseline{Direction::maximize};
    baseline.add_run(make_curve(Direction::maximize, {{100, 5.0}}));
    baseline.add_run(make_curve(Direction::maximize, {{100, 1.0}}));
    baseline.add_run(make_curve(Direction::maximize, {{100, 1.0}}));
    MultiRunCurve guided{Direction::maximize};
    guided.add_run(make_curve(Direction::maximize, {{50, 5.0}}));
    EXPECT_FALSE(speedup_at_threshold(baseline, guided, 5.0).has_value());
}

}  // namespace
}  // namespace nautilus
