#include "noc/router_generator.hpp"

#include <gtest/gtest.h>

namespace nautilus::noc {
namespace {

using ip::Metric;

Genome config_genome(const ParameterSpace& space, int vcs_idx, int depth_idx, int width_idx,
                     int va, int sa, int pipe_idx, int spec, int xbar, int route)
{
    Genome g = Genome::zeros(space);
    g.set_gene(router_gene::num_vcs, vcs_idx);
    g.set_gene(router_gene::buffer_depth, depth_idx);
    g.set_gene(router_gene::flit_width, width_idx);
    g.set_gene(router_gene::vc_alloc, va);
    g.set_gene(router_gene::sw_alloc, sa);
    g.set_gene(router_gene::pipeline_stages, pipe_idx);
    g.set_gene(router_gene::speculative, spec);
    g.set_gene(router_gene::crossbar, xbar);
    g.set_gene(router_gene::routing, route);
    return g;
}

TEST(RouterSpace, MatchesPaperScale)
{
    const ParameterSpace space = make_router_space();
    EXPECT_EQ(space.size(), router_gene::count);
    // ~30,000 comparable design instances varying 9 parameters (paper 4.1).
    EXPECT_EQ(space.exact_cardinality(), 34560u);
}

TEST(RouterSpace, AllocatorDomainsAreOrdered)
{
    const ParameterSpace space = make_router_space();
    EXPECT_TRUE(space[router_gene::vc_alloc].domain.ordered());
    EXPECT_TRUE(space[router_gene::sw_alloc].domain.ordered());
    EXPECT_TRUE(space[router_gene::crossbar].domain.ordered());
}

TEST(RouterDecode, RoundTripsValues)
{
    const ParameterSpace space = make_router_space();
    const Genome g = config_genome(space, 2, 4, 3, 3, 1, 2, 1, 1, 2);
    const RouterConfig c = decode_router(space, g);
    EXPECT_EQ(c.num_vcs, 4);
    EXPECT_EQ(c.buffer_depth, 32);
    EXPECT_EQ(c.flit_width, 256);
    EXPECT_EQ(c.vc_alloc, AllocatorKind::wavefront);
    EXPECT_EQ(c.sw_alloc, AllocatorKind::separable_input);
    EXPECT_EQ(c.pipeline_stages, 3);
    EXPECT_TRUE(c.speculative);
    EXPECT_EQ(c.crossbar, CrossbarKind::tristate);
    EXPECT_EQ(c.routing, RoutingKind::adaptive);
}

TEST(RouterDecode, RejectsBadInput)
{
    const ParameterSpace space = make_router_space();
    EXPECT_THROW(decode_router(space, Genome{{0, 0}}), std::invalid_argument);
    const Genome ok = Genome::zeros(space);
    EXPECT_THROW(decode_router(space, ok, 1), std::invalid_argument);
}

TEST(RouterConfig, KeyChangesWithAnyField)
{
    RouterConfig a;
    RouterConfig b = a;
    EXPECT_EQ(a.config_key(), b.config_key());
    b.num_vcs = 4;
    EXPECT_NE(a.config_key(), b.config_key());
    b = a;
    b.speculative = true;
    EXPECT_NE(a.config_key(), b.config_key());
}

TEST(RouterConfig, ToStringMentionsKeyFields)
{
    const RouterConfig c;
    const std::string s = c.to_string();
    EXPECT_NE(s.find("vcs="), std::string::npos);
    EXPECT_NE(s.find("round_robin"), std::string::npos);
}

TEST(RouterArea, MoreVcsMoreArea)
{
    RouterConfig small;
    small.num_vcs = 1;
    RouterConfig big = small;
    big.num_vcs = 4;
    const auto tech = synth::FpgaTech::virtex6_lx760t();
    EXPECT_LT(router_area(small).total().equivalent_luts(tech),
              router_area(big).total().equivalent_luts(tech));
}

TEST(RouterArea, WiderFlitsMoreArea)
{
    RouterConfig narrow;
    narrow.flit_width = 32;
    RouterConfig wide = narrow;
    wide.flit_width = 256;
    const auto tech = synth::FpgaTech::virtex6_lx760t();
    EXPECT_LT(router_area(narrow).total().equivalent_luts(tech),
              router_area(wide).total().equivalent_luts(tech));
}

TEST(RouterArea, AllocatorOrderingHoldsForArea)
{
    const auto tech = synth::FpgaTech::virtex6_lx760t();
    double prev = 0.0;
    for (auto kind : {AllocatorKind::round_robin, AllocatorKind::separable_input,
                      AllocatorKind::separable_output, AllocatorKind::wavefront}) {
        RouterConfig c;
        c.vc_alloc = kind;
        const double luts = router_area(c).total().equivalent_luts(tech);
        EXPECT_GT(luts, prev) << allocator_name(kind);
        prev = luts;
    }
}

TEST(RouterArea, TristateCrossbarIsSmaller)
{
    RouterConfig mux;
    mux.crossbar = CrossbarKind::mux;
    RouterConfig tri = mux;
    tri.crossbar = CrossbarKind::tristate;
    EXPECT_GT(router_area(mux).crossbar.luts, router_area(tri).crossbar.luts);
}

TEST(RouterArea, SpeculationAddsAllocatorArea)
{
    RouterConfig plain;
    RouterConfig spec = plain;
    spec.speculative = true;
    EXPECT_GT(router_area(spec).sw_allocator.luts, router_area(plain).sw_allocator.luts);
}

TEST(RouterArea, PipelineAddsRegisters)
{
    RouterConfig one;
    one.pipeline_stages = 1;
    RouterConfig three = one;
    three.pipeline_stages = 3;
    EXPECT_GT(router_area(three).pipeline_regs.ffs, router_area(one).pipeline_regs.ffs);
}

TEST(RouterPaths, DeeperPipelineFasterClock)
{
    const auto tech = synth::FpgaTech::virtex6_lx760t();
    RouterConfig c;
    double prev = 0.0;
    for (int stages = 1; stages <= 3; ++stages) {
        c.pipeline_stages = stages;
        const double f = synth::fmax_mhz(router_paths(c), tech);
        EXPECT_GT(f, prev) << "stages=" << stages;
        prev = f;
    }
}

TEST(RouterPaths, WavefrontAllocatorSlowerThanRoundRobin)
{
    const auto tech = synth::FpgaTech::virtex6_lx760t();
    RouterConfig rr;
    rr.pipeline_stages = 3;
    RouterConfig wf = rr;
    wf.vc_alloc = AllocatorKind::wavefront;
    EXPECT_GT(synth::fmax_mhz(router_paths(rr), tech),
              synth::fmax_mhz(router_paths(wf), tech));
}

TEST(RouterPaths, TristateCrossbarSlower)
{
    const auto tech = synth::FpgaTech::virtex6_lx760t();
    RouterConfig mux;
    mux.pipeline_stages = 3;
    RouterConfig tri = mux;
    tri.crossbar = CrossbarKind::tristate;
    EXPECT_GT(synth::fmax_mhz(router_paths(mux), tech),
              synth::fmax_mhz(router_paths(tri), tech));
}

TEST(RouterGenerator, ProvidesExpectedMetrics)
{
    const RouterGenerator gen;
    const auto metrics = gen.metrics();
    EXPECT_NE(std::find(metrics.begin(), metrics.end(), Metric::area_luts), metrics.end());
    EXPECT_NE(std::find(metrics.begin(), metrics.end(), Metric::freq_mhz), metrics.end());
    EXPECT_NE(std::find(metrics.begin(), metrics.end(), Metric::area_delay_product),
              metrics.end());
}

TEST(RouterGenerator, EvaluateIsDeterministic)
{
    const RouterGenerator gen;
    Rng rng{5};
    const Genome g = Genome::random(gen.space(), rng);
    const auto a = gen.evaluate(g);
    const auto b = gen.evaluate(g);
    EXPECT_DOUBLE_EQ(a.get(Metric::area_luts), b.get(Metric::area_luts));
    EXPECT_DOUBLE_EQ(a.get(Metric::freq_mhz), b.get(Metric::freq_mhz));
}

TEST(RouterGenerator, ValuesInPaperRange)
{
    // Fig. 1 ranges: tens of MHz to ~200 MHz, hundreds to ~25k LUTs.
    const RouterGenerator gen;
    Rng rng{6};
    for (int i = 0; i < 300; ++i) {
        const Genome g = Genome::random(gen.space(), rng);
        const auto mv = gen.evaluate(g);
        ASSERT_TRUE(mv.feasible);
        const double luts = mv.get(Metric::area_luts);
        const double freq = mv.get(Metric::freq_mhz);
        EXPECT_GT(luts, 200.0);
        EXPECT_LT(luts, 30000.0);
        EXPECT_GT(freq, 40.0);
        EXPECT_LT(freq, 260.0);
    }
}

TEST(RouterGenerator, AreaDelayProductDerived)
{
    const RouterGenerator gen;
    const Genome g = Genome::zeros(gen.space());
    const auto mv = gen.evaluate(g);
    EXPECT_NEAR(mv.get(Metric::area_delay_product),
                mv.get(Metric::period_ns) * mv.get(Metric::area_luts), 1e-6);
}

TEST(RouterGenerator, AuthorHintsValidateForAllMetrics)
{
    const RouterGenerator gen;
    for (Metric m : gen.metrics()) {
        const HintSet hints = gen.author_hints(m);
        EXPECT_NO_THROW(hints.validate(gen.space())) << ip::metric_name(m);
    }
}

TEST(RouterGenerator, FrequencyHintsPointTheRightWay)
{
    const RouterGenerator gen;
    const HintSet h = gen.author_hints(Metric::freq_mhz);
    ASSERT_TRUE(h.param(router_gene::pipeline_stages).bias.has_value());
    EXPECT_GT(*h.param(router_gene::pipeline_stages).bias, 0.0);
    ASSERT_TRUE(h.param(router_gene::num_vcs).bias.has_value());
    EXPECT_LT(*h.param(router_gene::num_vcs).bias, 0.0);
}

TEST(RouterGenerator, PeriodHintsAreNegatedFrequencyHints)
{
    const RouterGenerator gen;
    const HintSet f = gen.author_hints(Metric::freq_mhz);
    const HintSet p = gen.author_hints(Metric::period_ns);
    for (std::size_t i = 0; i < gen.space().size(); ++i) {
        if (f.param(i).bias) {
            EXPECT_DOUBLE_EQ(*p.param(i).bias, -*f.param(i).bias);
        }
    }
}

TEST(RouterGenerator, AreaDelayHintsAreMerged)
{
    const RouterGenerator gen;
    const HintSet h = gen.author_hints(Metric::area_delay_product);
    // Width strongly increases area -> strongly increases ADP.
    ASSERT_TRUE(h.param(router_gene::flit_width).bias.has_value());
    EXPECT_GT(*h.param(router_gene::flit_width).bias, 0.0);
    // Pipelining lowers period (good) but raises area slightly: mixed, small.
    ASSERT_TRUE(h.param(router_gene::pipeline_stages).bias.has_value());
    EXPECT_LT(*h.param(router_gene::pipeline_stages).bias, 0.2);
}

class RouterMonotonicitySweep : public ::testing::TestWithParam<int> {};

TEST_P(RouterMonotonicitySweep, BufferDepthMonotonicallyIncreasesArea)
{
    const ParameterSpace space = make_router_space();
    const auto tech = synth::FpgaTech::virtex6_lx760t();
    const int width_idx = GetParam();
    double prev = 0.0;
    for (int depth_idx = 0; depth_idx < 5; ++depth_idx) {
        Genome g = Genome::zeros(space);
        g.set_gene(router_gene::flit_width, width_idx);
        g.set_gene(router_gene::buffer_depth, depth_idx);
        const RouterConfig c = decode_router(space, g);
        const double luts = router_area(c).total().equivalent_luts(tech);
        EXPECT_GT(luts, prev);
        prev = luts;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, RouterMonotonicitySweep, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace nautilus::noc
